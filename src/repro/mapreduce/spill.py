"""Shuffle data-plane spill files: naming and worker-side writing.

The direct (driver-bypass) shuffle moves map output through on-disk
spill files — one checksummed NPB1-framed chunk per (task, partition)
under the job's scratch directory — so only manifests (paths + counts)
ever cross the driver.  Files are *attempt-scoped*: the dispatch
identity (task index, 1-based first-attempt number, speculative flag —
see :func:`repro.mapreduce.controlplane.attempts.attempt_tag`) is baked
into the name, so a re-dispatch after a lost worker or a speculative
backup can never collide with an earlier attempt's files.  Within one
dispatch the worker writes only after its attempt loop succeeds, exactly
once, and :func:`~repro.mapreduce.serialization.write_spill_chunk`
publishes by atomic rename — losers just leave orphans that are removed
with the job.

Fault injection rides the publish step: a plan with ``corrupt_rate`` /
``truncate_rate`` damages just-published files *after* the rename,
modelling silent disk corruption under the writer's feet — exactly the
failure the SPC1 integrity header exists to catch.
"""

from __future__ import annotations

import os
import re

from .controlplane.attempts import attempt_tag
from .faults import FaultPlan
from .job import KeyValue
from .serialization import SPILL_HEADER_BYTES, encode_records, write_spill_chunk

#: inverse of :func:`spill_file_path` — scratch tooling and the driver's
#: corruption-recovery path parse (kind, task, partition) back out of names
_SPILL_NAME_RE = re.compile(
    r"^(?P<kind>[a-z]+)-(?P<task>\d{5})-a\d+s?-p(?P<partition>\d{5})\.spill$"
)


def spill_file_path(
    spill_dir: str,
    kind: str,
    task_index: int,
    attempt: int,
    speculative: bool,
    partition: int,
) -> str:
    """Attempt-scoped spill file name for one (task, partition) chunk.

    The on-disk format — ``{kind}-{task:05d}-{tag}-p{partition:05d}.spill``
    with the tag from :func:`attempt_tag` — is locked by a unit test;
    scratch-directory tooling parses it.
    """
    tag = attempt_tag(attempt, speculative)
    return os.path.join(
        spill_dir, f"{kind}-{task_index:05d}-{tag}-p{partition:05d}.spill"
    )


def parse_spill_file_name(name: str) -> tuple[str, int, int] | None:
    """(kind, task_index, partition) parsed from a spill file name, or None."""
    match = _SPILL_NAME_RE.match(name)
    if match is None:
        return None
    return (match.group("kind"), int(match.group("task")), int(match.group("partition")))


def spill_partitions(
    partitions: list[list[KeyValue]],
    counts: list[int],
    spill_dir: str,
    kind: str,
    task_index: int,
    attempt: int,
    speculative: bool,
    *,
    plan: FaultPlan | None = None,
    durable: bool = False,
) -> tuple[list[tuple[str, int] | None], int]:
    """Encode and spill one task's partitions; return (manifest entries,
    files damaged by injection).

    Empty partitions get no file (``None`` entry); manifest sizes are
    *payload* bytes (the SPC1 header is excluded, keeping byte accounting
    comparable across planes).  Runs worker-side *after* the attempt loop
    succeeded, so a failed attempt never writes.  ``durable=True`` fsyncs
    each file before publish (journaled engines).  ``plan`` applies
    post-publish ``corrupt``/``truncate`` damage; the count of damaged
    files is reported so the driver can meter exactly how many
    corruptions were injected.
    """
    entries: list[tuple[str, int] | None] = []
    damaged = 0
    for partition, part in enumerate(partitions):
        if counts[partition]:
            chunk = encode_records(part)
            path = spill_file_path(
                spill_dir, kind, task_index, attempt, speculative, partition
            )
            write_spill_chunk(path, chunk, durable=durable)
            entries.append((path, len(chunk)))
            if plan is not None:
                mode = plan.spill_fault(
                    kind, task_index, attempt, partition, speculative=speculative
                )
                if mode is not None:
                    _damage_file(path, mode)
                    damaged += 1
        else:
            entries.append(None)
    return entries, damaged


def _damage_file(path: str, mode: str) -> None:
    """Inflict deterministic post-publish damage on one spill file.

    ``truncate`` halves the file (caught by the header's length field or,
    if the cut lands inside the header, the short-header check);
    ``corrupt`` flips one byte in the middle of the payload, leaving the
    framing intact so only the CRC can catch it.
    """
    size = os.path.getsize(path)
    if mode == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        return
    offset = SPILL_HEADER_BYTES + max(0, (size - SPILL_HEADER_BYTES) // 2)
    offset = min(offset, size - 1)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
