"""Shuffle data-plane spill files: naming and worker-side writing.

The direct (driver-bypass) shuffle moves map output through on-disk
spill files — one NPB1-framed chunk per (task, partition) under the
job's scratch directory — so only manifests (paths + counts) ever cross
the driver.  Files are *attempt-scoped*: the dispatch identity (task
index, 1-based first-attempt number, speculative flag — see
:func:`repro.mapreduce.controlplane.attempts.attempt_tag`) is baked into
the name, so a re-dispatch after a lost worker or a speculative backup
can never collide with an earlier attempt's files.  Within one dispatch
the worker writes only after its attempt loop succeeds, exactly once,
and :func:`~repro.mapreduce.serialization.write_chunk_file` publishes by
atomic rename — losers just leave orphans that are removed with the job.
"""

from __future__ import annotations

import os

from .controlplane.attempts import attempt_tag
from .job import KeyValue
from .serialization import encode_records, write_chunk_file


def spill_file_path(
    spill_dir: str,
    kind: str,
    task_index: int,
    attempt: int,
    speculative: bool,
    partition: int,
) -> str:
    """Attempt-scoped spill file name for one (task, partition) chunk.

    The on-disk format — ``{kind}-{task:05d}-{tag}-p{partition:05d}.spill``
    with the tag from :func:`attempt_tag` — is locked by a unit test;
    scratch-directory tooling parses it.
    """
    tag = attempt_tag(attempt, speculative)
    return os.path.join(
        spill_dir, f"{kind}-{task_index:05d}-{tag}-p{partition:05d}.spill"
    )


def spill_partitions(
    partitions: list[list[KeyValue]],
    counts: list[int],
    spill_dir: str,
    kind: str,
    task_index: int,
    attempt: int,
    speculative: bool,
) -> list[tuple[str, int] | None]:
    """Encode and spill one task's partitions; return the manifest entries.

    Empty partitions get no file (``None`` entry).  Runs worker-side
    *after* the attempt loop succeeded, so a failed attempt never writes;
    the atomic publish in :func:`write_chunk_file` covers mid-write kills.
    """
    entries: list[tuple[str, int] | None] = []
    for partition, part in enumerate(partitions):
        if counts[partition]:
            chunk = encode_records(part)
            path = spill_file_path(
                spill_dir, kind, task_index, attempt, speculative, partition
            )
            write_chunk_file(path, chunk)
            entries.append((path, len(chunk)))
        else:
            entries.append(None)
    return entries
