"""External merge sort: the shuffle's answer to partitions beyond memory.

Hadoop's reducers merge map outputs that do not fit in RAM by spilling
sorted runs to disk and k-way merging them.  The in-memory engine here
usually doesn't need that, but the paper's whole premise is datasets that
exceed single-machine memory — so the substrate provides the real
mechanism:

- :class:`ExternalSorter` — accept records, keep at most
  ``memory_budget`` of them buffered, spill sorted runs to temp files
  (length-prefixed NPB1 chunks — the shuffle codec, so ndarray payloads
  spill out-of-band instead of through the pickle stream), then stream a
  globally sorted merge via ``heapq.merge``;
- :func:`sorted_groups` — the reducer-facing wrapper yielding
  ``(key, value-iterator)`` groups from a sorter, drop-in compatible
  with :func:`repro.mapreduce.shuffle.sort_and_group`.

Spill accounting (runs written, records spilled) is exposed for tests
and for the simulator's I/O model.
"""

from __future__ import annotations

import heapq
import struct
import tempfile
from itertools import groupby
from pathlib import Path
from typing import Any, Callable, Iterator

from .serialization import (
    SpillCorruptionError,
    decode_records,
    encode_records,
    read_chunk_view,
    record_size,
    spill_crc,
    spill_verification_enabled,
)
from .shuffle import stable_hash

KeyValue = tuple[Any, Any]

#: records per framed chunk within a spill run.  Runs are read back one
#: chunk at a time during the k-way merge, so per-run memory while merging
#: is one chunk, not the whole run.
_RUN_CHUNK_RECORDS = 512

#: per-chunk frame header within a run file: payload length + CRC32
#: (0 when checksumming is disabled at write time)
_FRAME_HEADER = struct.Struct("<QI")


class ExternalSorter:
    """Sort arbitrarily many records under a byte budget.

    Usage::

        sorter = ExternalSorter(memory_budget=1_000_000)
        for record in records:
            sorter.add(*record)
        for key, value in sorter.sorted_records():
            ...

    ``sort_key`` maps keys to sortable proxies (same contract as the
    in-memory shuffle); ties between distinct keys break on the stable
    hash so output order is deterministic.  A sorter is single-use:
    adding after iteration starts raises.
    """

    def __init__(
        self,
        memory_budget: int = 64_000_000,
        *,
        sort_key: Callable[[Any], Any] | None = None,
        spill_dir: Path | str | None = None,
    ):
        if memory_budget < 1:
            raise ValueError(f"memory_budget must be >= 1, got {memory_budget}")
        self.memory_budget = memory_budget
        self.sort_key = sort_key
        self._buffer: list[KeyValue] = []
        self._buffered_bytes = 0
        self._runs: list[Path] = []
        # Only own a system tempdir when the caller gave us nowhere to
        # spill; a caller-provided directory is the caller's to remove
        # (e.g. the engine's per-job shuffle directory, swept on release),
        # so a worker killed mid-merge leaks nothing under /tmp.
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if spill_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-extsort-")
            self._spill_dir = Path(self._tempdir.name)
        else:
            self._spill_dir = Path(spill_dir)
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        self._sealed = False
        #: observability: records that went through a disk run
        self.spilled_records = 0

    # -- ingest ----------------------------------------------------------------
    def add(self, key: Any, value: Any) -> None:
        if self._sealed:
            raise RuntimeError("sorter already iterated; create a new one")
        self._buffer.append((key, value))
        self._buffered_bytes += record_size(key, value)
        if self._buffered_bytes >= self.memory_budget:
            self._spill()

    def add_all(self, records: Iterator[KeyValue] | list[KeyValue]) -> None:
        for key, value in records:
            self.add(key, value)

    # -- spill machinery ----------------------------------------------------------
    def _ordering(self, record: KeyValue):
        key = record[0]
        if self.sort_key is None:
            return (key,)
        return (self.sort_key(key), stable_hash(key))

    def _spill(self) -> None:
        if not self._buffer:
            return
        self._buffer.sort(key=self._ordering)
        run_path = self._spill_dir / f"run-{len(self._runs):05d}.npb"
        checksum = spill_verification_enabled()
        with run_path.open("wb") as handle:
            for start in range(0, len(self._buffer), _RUN_CHUNK_RECORDS):
                chunk = encode_records(self._buffer[start : start + _RUN_CHUNK_RECORDS])
                crc = spill_crc(chunk) if checksum else 0
                handle.write(_FRAME_HEADER.pack(len(chunk), crc))
                handle.write(chunk)
        self._runs.append(run_path)
        self.spilled_records += len(self._buffer)
        self._buffer = []
        self._buffered_bytes = 0

    @staticmethod
    def _read_run(path: Path) -> Iterator[KeyValue]:
        # One mmap per run; each framed chunk decodes from a slice of the
        # mapping, so merge-time memory stays one chunk of *records* per
        # run and the raw bytes are never copied out of the page cache.
        # Every frame is length- and CRC-checked: a torn or bit-flipped
        # run file surfaces as SpillCorruptionError instead of a pickle
        # error (or, worse, silently wrong records).
        view = read_chunk_view(path)
        offset, end = 0, view.nbytes
        verify = spill_verification_enabled()
        while offset < end:
            if end - offset < _FRAME_HEADER.size:
                raise SpillCorruptionError(
                    str(path), f"truncated run frame header at offset {offset}"
                )
            length, crc = _FRAME_HEADER.unpack_from(view, offset)
            offset += _FRAME_HEADER.size
            if offset + length > end:
                raise SpillCorruptionError(
                    str(path),
                    f"truncated run frame at offset {offset} "
                    f"(need {length} bytes, have {end - offset})",
                )
            chunk = view[offset : offset + length]
            if verify and crc and spill_crc(chunk) != crc:
                raise SpillCorruptionError(
                    str(path), f"run frame CRC mismatch at offset {offset}"
                )
            yield from decode_records(chunk)
            offset += length

    # -- output ---------------------------------------------------------------
    @property
    def num_runs(self) -> int:
        return len(self._runs)

    def sorted_records(self) -> Iterator[KeyValue]:
        """Stream all records in key order (merging spills and buffer).

        Streams are merged oldest run first with the in-memory buffer
        last; since ``heapq.merge`` is stable across its inputs, records
        whose ordering keys tie come out in *arrival* order — the same
        tie-break a single stable in-memory sort gives, so spilling and
        not spilling produce identical streams.
        """
        if self._sealed:
            raise RuntimeError("sorter already iterated; create a new one")
        self._sealed = True
        self._buffer.sort(key=self._ordering)
        streams: list[Iterator[KeyValue]] = [
            self._read_run(path) for path in self._runs
        ]
        streams.append(iter(self._buffer))
        yield from heapq.merge(*streams, key=self._ordering)

    def close(self) -> None:
        """Release spill files early (also happens on GC for owned dirs)."""
        if self._tempdir is not None:
            self._tempdir.cleanup()
            return
        for path in self._runs:
            try:
                path.unlink()
            except OSError:
                pass  # caller's directory may already be gone

    def __enter__(self) -> "ExternalSorter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def sorted_groups(
    sorter: ExternalSorter,
) -> Iterator[tuple[Any, Iterator[Any]]]:
    """Group a sorter's output by key — the external sort_and_group."""
    for key, group in groupby(sorter.sorted_records(), key=lambda kv: kv[0]):
        yield key, (value for _key, value in group)
