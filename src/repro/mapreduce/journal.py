"""Durable job journal: driver-crash resumable execution.

PR 2 made *task* attempts fault-tolerant; the driver itself remained a
single point of failure — kill it mid-job and every completed map
output is thrown away, exactly the wasted-work regime the paper's
makespan analysis penalizes on commodity clusters.  This module closes
that gap with a write-ahead journal over the direct shuffle's durable
spill files:

- :class:`JobJournal` — an append-only, fsync'd JSONL file
  (``journal.jsonl``) recording, per job: the pickled job spec
  (``{uid}.spec.pkl``, written atomically before any task runs), every
  control-plane event the engine emits (attempt transitions, spill
  publications, quarantines), one ``map_result`` line per completed map
  task carrying its spill-file manifest, and a ``job_finished`` line on
  success.  Each line is flushed and fsync'd before the engine
  proceeds, so the journal never promises state the disk doesn't hold
  (map spill files are themselves fsync'd before their manifests are
  journaled — ``MapTaskSpec.durable_spill``).
- :func:`plan_resume` — reads a journal tolerantly (a torn final line —
  the driver died mid-append — is dropped, matching the atomic-append
  contract) and computes the resume plan for the most recent unfinished
  job: which map tasks' spill files survived intact (every manifest
  entry present with the exact journaled size) and which must re-run.
- :func:`resume_job` — rebuilds the engine against the same journal
  directory, seeds the map phase's :class:`AttemptTracker`/results with
  the salvaged manifests, re-runs only the missing map tasks, and runs
  the reduce phase as usual.  Outputs and job counters are bit-identical
  to an uninterrupted run: salvaged tasks contribute their *journaled*
  counters, replayed tasks re-execute deterministically.

The journal lives in its own directory (one per logical job lineage);
journaled engines also place their per-job shuffle directories there, so
spill files and the manifests describing them share a filesystem.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .controlplane.events import AttemptTransition, SpillQuarantined, SpillWritten

if TYPE_CHECKING:  # circular at runtime: runtime.py imports this module
    from .job import Job, JobResult
    from .stats import EngineStats

#: the journal file inside a journal directory
JOURNAL_NAME = "journal.jsonl"

#: journal record types (the "type" field of each JSONL line)
JOB_SUBMITTED = "job_submitted"
MAP_RESULT = "map_result"
JOB_FINISHED = "job_finished"

#: control-plane events worth persisting (attempt lifecycle + data plane)
_EVENT_TYPES = (AttemptTransition, SpillWritten, SpillQuarantined)


def parse_jsonl_tolerant(text: str) -> list[dict]:
    """Parse JSONL, dropping a torn *final* line (interrupted append).

    A record that fails to parse anywhere else is real corruption and
    re-raises — only the tail of the file can legitimately be torn by a
    dying writer under the append-fsync discipline.
    """
    records: list[dict] = []
    lines = [line for line in text.splitlines() if line.strip()]
    for position, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                break
            raise
    return records


def read_journal(path: str | Path) -> list[dict]:
    """All journal records at ``path``, torn tail dropped."""
    return parse_jsonl_tolerant(Path(path).read_text(encoding="utf-8"))


class JobJournal:
    """Append-only fsync'd JSONL journal for one engine's jobs.

    Writers call :meth:`submit` / :meth:`map_result` / :meth:`finish`
    (and feed :meth:`record_event` to the engine's event bus); every
    append hits the disk before returning.  ``stats`` (when given) gets
    ``journal_events`` incremented per append so the durability overhead
    is observable.
    """

    def __init__(self, journal_dir: str | Path, stats: "EngineStats | None" = None):
        self.dir = Path(journal_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / JOURNAL_NAME
        self._fh: Any = None
        self._stats = stats

    # -- paths an engine and resume share --------------------------------------
    def spec_path(self, uid: str) -> Path:
        """Durable pickled (job, splits, num_partitions) for one job uid."""
        return self.dir / f"{uid}.spec.pkl"

    def shuffle_dir(self, uid: str) -> Path:
        """Where a journaled engine spills this job's shuffle files."""
        return self.dir / f"{uid}-shuffle"

    # -- appending --------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Append one record; flushed and fsync'd before returning."""
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if self._stats is not None:
            self._stats.journal_events += 1

    def submit(self, uid: str, job: "Job", splits: list, num_partitions: int) -> None:
        """Write-ahead record for one job: durable spec pickle + journal line.

        The spec pickle is published atomically (temp + rename + fsync)
        *before* the journal references it, so a journal that names a
        spec guarantees the spec is loadable.
        """
        spec = self.spec_path(uid)
        tmp = str(spec) + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(
                (job, list(splits), num_partitions),
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, spec)
        self.append(
            {
                "type": JOB_SUBMITTED,
                "uid": uid,
                "job": job.name,
                "num_map_tasks": len(splits),
                "num_partitions": num_partitions,
                "spec": spec.name,
            }
        )

    def map_result(
        self,
        uid: str,
        task_index: int,
        entries: list,
        counts: list,
        sizes: list,
        counters: dict,
    ) -> None:
        """One completed map task's spill manifest + counters."""
        self.append(
            {
                "type": MAP_RESULT,
                "uid": uid,
                "task_index": task_index,
                "entries": [list(entry) if entry is not None else None for entry in entries],
                "counts": list(counts),
                "sizes": list(sizes),
                "counters": counters,
            }
        )

    def finish(self, uid: str, *, resumed: bool = False) -> None:
        """Mark one job complete; its journal state is no longer needed."""
        self.append({"type": JOB_FINISHED, "uid": uid, "resumed": resumed})

    def record_event(self, event: Any) -> None:
        """EventBus subscriber persisting the attempt/spill event stream.

        Monotonic timestamps are dropped — they are meaningless across
        driver processes, and resume must not depend on them.
        """
        if isinstance(event, _EVENT_TYPES):
            payload = dataclasses.asdict(event)
            payload.pop("time", None)
            self.append({"type": type(event).__name__, **payload})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# -- resume planning ------------------------------------------------------------


@dataclass
class ResumePlan:
    """What :func:`plan_resume` found in a journal directory."""

    uid: str
    job_name: str
    spec_path: Path
    num_map_tasks: int
    num_partitions: int
    #: task_index -> (entries, counts, sizes, counters): map tasks whose
    #: journaled spill files all survived intact
    salvage: dict[int, tuple] = field(default_factory=dict)
    #: map tasks whose outputs are missing/incomplete and must re-run
    missing: list[int] = field(default_factory=list)
    #: every unfinished uid in the journal (the target is the last one;
    #: earlier ones are dead runs superseded by the resumed execution)
    open_uids: list[str] = field(default_factory=list)


@dataclass
class ResumeOutcome:
    """What :func:`resume_job` produced."""

    result: "JobResult"
    stats: "EngineStats"
    #: uid of the dead run that was resumed
    uid: str
    tasks_resumed: int
    tasks_replayed: int


def _entries_intact(entries: list) -> bool:
    """True when every manifest entry's file exists at its exact size."""
    from .serialization import SPILL_HEADER_BYTES

    for entry in entries:
        if entry is None:
            continue
        path, payload_bytes = entry
        try:
            if os.path.getsize(path) != payload_bytes + SPILL_HEADER_BYTES:
                return False
        except OSError:
            return False
    return True


def plan_resume(journal_dir: str | Path) -> ResumePlan:
    """Compute the resume plan for the most recent unfinished job.

    Raises ``FileNotFoundError`` when there is no journal (or the
    unfinished job's spec pickle is gone) and ``ValueError`` when every
    journaled job already finished.
    """
    journal_dir = Path(journal_dir)
    path = journal_dir / JOURNAL_NAME
    if not path.exists():
        raise FileNotFoundError(f"no journal at {path}")
    records = read_journal(path)
    submitted: dict[str, dict] = {}
    map_results: dict[str, dict[int, dict]] = {}
    for record in records:
        rtype = record.get("type")
        if rtype == JOB_SUBMITTED:
            submitted[record["uid"]] = record
        elif rtype == MAP_RESULT:
            map_results.setdefault(record["uid"], {})[record["task_index"]] = record
        elif rtype == JOB_FINISHED:
            submitted.pop(record["uid"], None)
    if not submitted:
        raise ValueError(f"nothing to resume: every journaled job in {journal_dir} finished")
    open_uids = list(submitted)
    uid = open_uids[-1]
    head = submitted[uid]
    spec_path = journal_dir / head["spec"]
    if not spec_path.exists():
        raise FileNotFoundError(f"journal names missing spec pickle {spec_path}")
    salvage: dict[int, tuple] = {}
    missing: list[int] = []
    results = map_results.get(uid, {})
    for task_index in range(head["num_map_tasks"]):
        record = results.get(task_index)
        if record is not None and _entries_intact(record["entries"]):
            entries = [
                tuple(entry) if entry is not None else None for entry in record["entries"]
            ]
            salvage[task_index] = (
                entries,
                record["counts"],
                record["sizes"],
                record["counters"],
            )
        else:
            missing.append(task_index)
    return ResumePlan(
        uid=uid,
        job_name=head["job"],
        spec_path=spec_path,
        num_map_tasks=head["num_map_tasks"],
        num_partitions=head["num_partitions"],
        salvage=salvage,
        missing=missing,
        open_uids=open_uids,
    )


def resume_job(
    journal_dir: str | Path,
    *,
    max_workers: int | None = None,
    scheduling_policy: Any = None,
    trace_sink: Any = None,
) -> ResumeOutcome:
    """Resume the most recent unfinished journaled job to completion.

    Rebuilds a journaled :class:`~repro.mapreduce.runtime
    .MultiprocessEngine` over the same directory, re-attaches the dead
    run's surviving map outputs, re-runs only the missing map tasks, and
    runs the reduce phase normally.  The result (records *and* job
    counters) is bit-identical to an uninterrupted run; the meters on the
    returned outcome prove how much map work was salvaged
    (``tasks_resumed``) versus re-executed (``tasks_replayed``).

    On success the dead run — and any older unfinished runs in the same
    journal, all superseded by this completion — is marked finished and
    its spill files and spec pickle are removed.
    """
    from .runtime import MultiprocessEngine  # runtime imports journal at top level

    plan = plan_resume(journal_dir)
    with open(plan.spec_path, "rb") as fh:
        job, splits, num_partitions = pickle.load(fh)
    engine = MultiprocessEngine(
        max_workers=max_workers,
        journal_dir=journal_dir,
        scheduling_policy=scheduling_policy,
        trace_sink=trace_sink,
    )
    try:
        engine._pending_resume = plan
        del num_partitions  # Engine.run re-derives it from job.num_reducers
        result = engine.run(job, splits=splits)
        # The resumed execution supersedes every unfinished run on record:
        # retire them (journal first, then artifacts, so a crash between
        # the two leaks files rather than resurrecting a finished job).
        journal = engine._journal
        for uid in plan.open_uids:
            journal.finish(uid, resumed=True)
        for uid in plan.open_uids:
            shutil.rmtree(journal.shuffle_dir(uid), ignore_errors=True)
            journal.spec_path(uid).unlink(missing_ok=True)
    finally:
        engine.close()
    return ResumeOutcome(
        result=result,
        stats=engine.stats,
        uid=plan.uid,
        tasks_resumed=engine.stats.tasks_resumed,
        tasks_replayed=engine.stats.tasks_replayed,
    )
