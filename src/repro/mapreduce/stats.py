"""Driver-side engine metrics and shuffle bookkeeping dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Driver-side dispatch metrics for a pooled engine.

    Kept out of job counters on purpose: job results stay bit-identical
    between engines while the perf harness still gets exact byte
    accounting.  ``broadcast_loads`` counts one-shot job localizations
    (at most one per worker per job); ``worker_pids`` the distinct workers
    that executed tasks; ``run_seconds`` accumulates wall-clock over
    ``Engine.run`` calls (the trace round-trip tests compare it to the
    makespan of the emitted timeline).

    The fault-tolerance metrics meter the driver's recovery work:
    ``pool_restarts`` (worker pool respawned after a dead worker or hang
    kill), ``tasks_relaunched`` (task dispatches re-issued after a pool
    restart), ``tasks_timed_out`` (hung attempts the driver killed —
    post-hoc attempt timeouts are job counters instead),
    ``speculative_launched``/``speculative_wasted`` (backup attempts
    started / attempts whose output lost the race and was discarded).

    The shuffle data-plane meters quantify what the driver actually
    touched: ``driver_bytes`` is the intermediate (map-output) bytes that
    crossed the driver process — full encoded chunks on the relay path,
    only pickled manifests on the direct path (final job output returned
    to the caller is not shuffle traffic and is not counted);
    ``spill_files_written``/``spill_bytes_written`` count the direct
    path's on-disk spill chunks; ``fused_stages`` the reduce→map
    short-circuits taken by fused chaining.

    The zero-copy meters quantify the ``data_plane="shm"`` payoff:
    ``shm_segments``/``shm_bytes`` count the shared-memory segments the
    driver materialized and their payload bytes (one per distinct cache
    object per machine — jobs sharing a cache share a segment);
    ``shm_segments_revived`` segments rebuilt after a pool crash.
    ``mmap_reads`` and ``bytes_copied`` aggregate the workers'
    :data:`~repro.mapreduce.serialization.io_meter` deltas: chunk files
    mapped instead of slurped, and payload bytes that *were* copied into
    private process memory on the read path (eager file reads, broadcast
    localizations, driver-relayed chunks — shm attaches and mmap reads
    count zero).  ``bytes_copied`` per pair is the benchmark's headline
    number and the counter-ceiling guard watches it for regressions.

    The durability meters track journaling and integrity recovery:
    ``journal_events`` counts fsync'd journal appends; ``tasks_resumed``
    map tasks whose journaled spill output was re-attached instead of
    re-run by ``resume_job``; ``tasks_replayed`` map attempts re-executed
    driver-side (missing outputs on resume, corrupt spill files during a
    run); ``spill_corruptions`` integrity failures detected on the read
    path; ``spill_files_quarantined`` damaged files renamed aside;
    ``spill_files_damaged`` files the fault plan's ``corrupt_rate`` /
    ``truncate_rate`` actually damaged (write-side injection count, so
    tests can assert every injected corruption was detected).

    The replication meters record the last pairwise run's distance from
    the Afrati/Ullman lower bound: ``replication_factor_achieved`` is the
    measured copies-per-element (replicas emitted / v),
    ``replication_lower_bound`` the floor ``(v−1)/(capacity−1)`` at the
    scheme's own working-set capacity, and ``shuffle_bytes_vs_bound`` the
    measured shuffle bytes over the per-leg byte floor — cached runs ship
    ids instead of payloads, so values below 1.0 mean the run beat the
    naive floor.  Zero means "no pairwise run metered yet".
    """

    pools_created: int = 0
    jobs_broadcast: int = 0
    broadcast_bytes: int = 0
    spec_bytes: int = 0
    tasks_dispatched: int = 0
    broadcast_loads: int = 0
    worker_pids: set = field(default_factory=set)
    pool_restarts: int = 0
    tasks_relaunched: int = 0
    tasks_timed_out: int = 0
    speculative_launched: int = 0
    speculative_wasted: int = 0
    driver_bytes: int = 0
    spill_files_written: int = 0
    spill_bytes_written: int = 0
    fused_stages: int = 0
    shm_segments: int = 0
    shm_bytes: int = 0
    shm_segments_revived: int = 0
    mmap_reads: int = 0
    bytes_copied: int = 0
    journal_events: int = 0
    tasks_resumed: int = 0
    tasks_replayed: int = 0
    spill_corruptions: int = 0
    spill_files_quarantined: int = 0
    spill_files_damaged: int = 0
    replication_factor_achieved: float = 0.0
    replication_lower_bound: float = 0.0
    shuffle_bytes_vs_bound: float = 0.0
    run_seconds: float = 0.0

    @property
    def bytes_pickled(self) -> int:
        """Everything the driver pickled to dispatch work (broadcast + specs)."""
        return self.broadcast_bytes + self.spec_bytes


@dataclass
class ShuffleState:
    """One job's gathered map output, ready for the reduce phase.

    ``gathered[p]`` holds partition ``p``'s data in map-task order: raw
    records (``mode="memory"``), encoded chunks (``"relay"``), or
    ``(path, file_bytes)`` manifest entries (``"direct"``).  The
    map-reported per-partition record/byte sums drive the shuffle
    counters and the reduce-side spill decision in every mode.
    """

    mode: str
    gathered: list[list]
    part_records: list[int]
    part_bytes: list[int]
