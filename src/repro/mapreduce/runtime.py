"""Execution engines: run a :class:`~repro.mapreduce.job.Job` over splits.

Two engines share one code path per task (worker-side execution lives in
:mod:`repro.mapreduce.tasks`, attempt/retry/speculation decisions in
:mod:`repro.mapreduce.controlplane`, spill-file plumbing in
:mod:`repro.mapreduce.spill`): :class:`SerialEngine` runs everything
in-process and deterministic (the default for tests and validation);
:class:`MultiprocessEngine` fans map and reduce tasks out over a
**persistent** ``ProcessPoolExecutor`` that lives across phases and
chained jobs (everything shipped must be picklable; results are
bit-identical to the serial engine).

The multiprocess engine is built around two ideas from the paper's cost
model (replication rate × communication cost is the governing tradeoff):
**one-shot job broadcast** (a job's static parts are pickled once to a
broadcast file and localized lazily per worker — see
:mod:`repro.mapreduce.tasks`) and a **direct, driver-bypass shuffle**
(``shuffle_mode="direct"``: map output moves through attempt-scoped
spill files and only manifests cross the driver — see
:mod:`repro.mapreduce.spill`; ``"relay"`` keeps the legacy
driver-forwarding plane).  :meth:`Engine.run_chain` on the pooled engine
additionally *fuses* adjacent pipeline stages whose next map phase is
identity-shaped (see :mod:`repro.mapreduce.fusion`).  **Fault
tolerance** mirrors Hadoop 0.20: per-attempt wall-clock budgets,
deterministic retry backoff, transparent recovery from dead workers
(pool respawn + lost-attempt charging via began-markers), driver-side
kills of hung attempts, and end-of-phase speculative backups — see
:mod:`repro.mapreduce.controlplane.attempts` for the state machine.

**Control plane.**  Both engines orchestrate through the shared control
plane: an :class:`~repro.mapreduce.controlplane.AttemptTracker` per
phase owns attempt lifecycle and speculation decisions; a pluggable
:class:`~repro.mapreduce.controlplane.SchedulingPolicy`
(``scheduling_policy=`` — ``"fifo"`` default, ``"lpt"``,
``"round_robin"``) orders task dispatch by estimated working-set cost
(the paper's ``|D_l|`` split sizes and ``|P_l|`` partition bytes);
results stay bit-identical across policies because outputs are keyed by
task index.  Engines narrate attempt transitions, spills, and bytes
moved on an :class:`~repro.mapreduce.controlplane.EventBus`
(``trace_sink=`` attaches a
:class:`~repro.mapreduce.controlplane.JsonlTraceSink` whose file loads
straight into :class:`repro.cluster.trace.Trace`).

Both engines meter the framework counters the evaluation harness
compares against the paper's Table-1 predictions.  Engine-level dispatch
metrics (bytes pickled, broadcast loads) are deliberately kept *out* of
job counters so serial and pooled runs stay bit-identical.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import shutil
import tempfile
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Sequence

from .controlplane import (
    AttemptTracker,
    BytesMoved,
    EventBus,
    PhaseMarker,
    SchedulingPolicy,
    SpillQuarantined,
    SpillWritten,
    TaskCost,
    resolve_policy,
)

# Counter names, the backoff helper, spill threshold and reduce-spill
# counters moved out with the control-plane/worker split; re-exported
# here because they are part of this module's long-standing surface.
from .controlplane.attempts import (  # noqa: F401  (re-exports)
    TASK_ATTEMPTS,
    TASK_FAILURES,
    TASK_RETRIES,
    TASKS_TIMED_OUT,
    backoff_seconds as _backoff_seconds,
)
from .counters import (
    FRAMEWORK_GROUP,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from .fusion import fusable, run_fused_chain
from .job import Job, JobResult, KeyValue, TaskFailedError
from .journal import JobJournal
from .serialization import SpillCorruptionError
from .shm import SegmentHost, shm_available
from .spill import parse_spill_file_name
from .splits import Split, split_by_count
from .stats import EngineStats, ShuffleState
from .tasks import (  # noqa: F401  (re-exports)
    DEFAULT_SPILL_THRESHOLD_BYTES,
    REDUCE_SPILL_RUNS,
    REDUCE_SPILLED_RECORDS,
    FusedOutput,
    JobRef,
    MapTaskSpec,
    NextStage,
    ReduceTaskSpec,
    marker_path,
    replay_map_task,
    run_pickled_spec,
    run_spec,
    worker_init,
)

#: Default records per map split when neither ``num_map_tasks`` nor the
#: job's ``config["records_per_split"]`` is given.  ``num_map_tasks``
#: always wins over the per-split size: when the caller fixes the task
#: count, records are carved into exactly that many near-equal splits and
#: this constant is ignored.
DEFAULT_RECORDS_PER_SPLIT = 5000

#: Below this many records, :func:`choose_engine` picks :class:`SerialEngine`.
#: The engine-scaling benchmark (BENCH_engine_scaling.json) shows the
#: crossover empirically: at small scale (v=60 design-scheme docsim, a few
#: thousand shuffled records) the serial engine beats the pooled one —
#: pool startup plus per-job broadcasts cost more than the computation —
#: while large record volumes amortize the dispatch overhead.
AUTO_SERIAL_MAX_RECORDS = 20_000

#: driver polling cadence for completion/hang/speculation checks
_POLL_SECONDS = 0.05

#: shuffle data planes a :class:`MultiprocessEngine` supports
SHUFFLE_MODES = ("direct", "relay")

#: broadcast data planes a :class:`MultiprocessEngine` supports:
#: ``"default"`` ships the distributed cache inside the per-job broadcast
#: pickle (each worker unpickles its own copy); ``"shm"`` materializes it
#: once per machine in POSIX shared memory and workers attach read-only
#: zero-copy views (see :mod:`repro.mapreduce.shm`).
DATA_PLANES = ("default", "shm")

# Legacy private aliases from before the split into repro.mapreduce.tasks.
_JobRef = JobRef
_MapTaskSpec = MapTaskSpec
_NextStage = NextStage
_ReduceTaskSpec = ReduceTaskSpec
_FusedOutput = FusedOutput
_run_spec = run_spec
_run_pickled_spec = run_pickled_spec
_worker_init = worker_init
_marker_path = marker_path
_ShuffleState = ShuffleState


class Engine:
    """Shared orchestration: split planning, shuffle accounting, result.

    ``scheduling_policy`` (a
    :class:`~repro.mapreduce.controlplane.SchedulingPolicy`, a registry
    name, or None for fifo) orders task dispatch within each phase;
    ``trace_sink`` (e.g. a
    :class:`~repro.mapreduce.controlplane.JsonlTraceSink`) subscribes to
    the engine's :attr:`events` bus and is closed with the engine.
    """

    #: how map output reaches reduce tasks; pooled engines override
    _shuffle_mode = "memory"

    def __init__(
        self,
        *,
        scheduling_policy: SchedulingPolicy | str | None = None,
        trace_sink: Any = None,
    ):
        self.scheduling_policy = resolve_policy(scheduling_policy)
        self.events = EventBus()
        self._trace_sink = trace_sink
        #: (job, handle, splits, num_partitions) of the current map phase
        self._map_context: tuple | None = None
        if trace_sink is not None:
            self.events.subscribe(trace_sink.record)

    # -- observability ---------------------------------------------------------
    @property
    def _observing(self) -> bool:
        """True when someone listens; event objects aren't built otherwise.

        ``getattr`` keeps engines defined before the control plane (or
        subclasses skipping ``super().__init__``) working unobserved.
        """
        events = getattr(self, "events", None)
        return events is not None and len(events) > 0

    def _bus(self) -> EventBus | None:
        return getattr(self, "events", None) if self._observing else None

    def _emit(self, event: Any) -> None:
        self.events.emit(event)

    def run(
        self,
        job: Job,
        input_records: Sequence[KeyValue] | None = None,
        *,
        splits: list[Split] | None = None,
        num_map_tasks: int | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``input_records`` (or pre-built ``splits``).

        ``num_map_tasks`` controls split planning when raw records are
        given; when omitted, one split is planned per
        ``job.config["records_per_split"]`` records (default
        :data:`DEFAULT_RECORDS_PER_SPLIT`), at least one.  An explicit
        ``num_map_tasks`` always overrides the per-split size.
        """
        if (input_records is None) == (splits is None):
            raise ValueError("provide exactly one of input_records or splits")
        if splits is None:
            assert input_records is not None
            splits = self._plan_splits(job, input_records, num_map_tasks)

        num_partitions = job.num_reducers if job.reducer is not None else 0
        handle = self._job_handle(job)
        self._journal_submit(job, handle, splits, num_partitions)
        started = time.monotonic()
        try:
            result = self._run_phases(job, handle, splits, num_partitions)
            self._journal_finish(handle)
            return result
        finally:
            self._note_run(time.monotonic() - started)
            self._release_job(handle)

    def run_chain(
        self,
        jobs: Sequence[Job],
        input_records: Sequence[KeyValue],
        *,
        num_map_tasks: int | None = None,
        fuse: bool | None = None,
    ) -> list[JobResult]:
        """Run a job chain; stage i+1 consumes stage i's output records.

        Returns the per-stage :class:`~repro.mapreduce.job.JobResult`
        list.  A stage's :class:`~repro.mapreduce.job.TaskFailedError` is
        re-raised annotated with ``stage_index``/``job_name``.  ``fuse``
        is accepted on every engine for interface compatibility; only
        engines with a direct shuffle plane implement fused chaining
        (:meth:`MultiprocessEngine.run_chain`), everything else runs the
        plain sequential chain.
        """
        del fuse  # no fused plane here; see MultiprocessEngine.run_chain
        results: list[JobResult] = []
        records: Sequence[KeyValue] = input_records
        for index, job in enumerate(jobs):
            try:
                result = self.run(job, records, num_map_tasks=num_map_tasks)
            except TaskFailedError as exc:
                exc.stage_index = index
                exc.job_name = job.name
                raise
            results.append(result)
            records = result.records
        return results

    def _plan_splits(
        self,
        job: Job,
        input_records: Sequence[KeyValue],
        num_map_tasks: int | None,
    ) -> list[Split]:
        if num_map_tasks is None:
            per_split = int(
                job.config.get("records_per_split", DEFAULT_RECORDS_PER_SPLIT)
            )
            if per_split < 1:
                raise ValueError(f"records_per_split must be >= 1, got {per_split}")
            num_map_tasks = max(1, len(input_records) // per_split)
        return split_by_count(input_records, num_map_tasks)

    def _run_phases(
        self, job: Job, handle: Any, splits: list[Split], num_partitions: int
    ) -> JobResult:
        counters = Counters()
        state = self._map_phase(job, handle, splits, num_partitions, counters)

        if job.reducer is None:
            records = [record for part in state.gathered for record in part]
            return JobResult(
                records=records,
                counters=counters,
                num_map_tasks=len(splits),
                num_reduce_tasks=0,
            )

        # Shuffle volume comes from the map-reported per-partition sums —
        # the records were measured exactly once, task-side.
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_RECORDS, sum(state.part_records))
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_BYTES, sum(state.part_bytes))

        reduce_outputs = self._reduce_phase(job, handle, state)
        records = []
        for output, counter_dict, info in reduce_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            self._note_worker(info)
            records.extend(output)
        return JobResult(
            records=records,
            counters=counters,
            num_map_tasks=len(splits),
            num_reduce_tasks=num_partitions,
        )

    @staticmethod
    def _phase_costs(specs: list[Any]) -> list[TaskCost]:
        """Estimated task costs for the scheduling policy, by working set.

        Map tasks are costed by their split's record count (the paper's
        ``|D_l|``), reduce tasks by their partition's accounted bytes
        (``|P_l|``, falling back to the record count for in-memory
        partitions).  Units are arbitrary — policies only compare.
        """
        costs = []
        for index, spec in enumerate(specs):
            if isinstance(spec, MapTaskSpec):
                seconds = float(len(spec.records))
            else:
                seconds = float(spec.partition_bytes or spec.num_records)
            costs.append(TaskCost(task_id=index, seconds=seconds))
        return costs

    def _dispatch_order(self, specs: list[Any]) -> list[int]:
        policy = getattr(self, "scheduling_policy", None)
        if policy is None:
            return list(range(len(specs)))
        return policy.dispatch_order(self._phase_costs(specs))

    def _phase_marker(self, job: Job, kind: str, num_tasks: int, state: str) -> None:
        if self._observing:
            self._emit(
                PhaseMarker(
                    time=time.monotonic(),
                    job=job.name,
                    kind=kind,
                    num_tasks=num_tasks,
                    state=state,
                )
            )

    def _map_phase(
        self,
        job: Job,
        handle: Any,
        splits: list[Split],
        num_partitions: int,
        counters: Counters,
    ) -> _ShuffleState:
        """Run the map tasks and gather their partitioned output by mode."""
        mode = self._shuffle_mode if num_partitions > 0 else "memory"
        spill_dir = self._shuffle_dir(handle) if mode == "direct" else None
        # Stashed so corruption recovery during the *reduce* phase can
        # replay a producing map task from its original split.
        self._map_context = (job, handle, splits, num_partitions)
        durable = spill_dir is not None and self._durable_spills()
        map_specs = [
            MapTaskSpec(
                job=handle,
                records=split.records,
                num_partitions=num_partitions,
                encode=mode != "memory",
                spill_dir=spill_dir,
                task_index=index,
                durable_spill=durable,
            )
            for index, split in enumerate(splits)
        ]
        self._phase_marker(job, "map", len(map_specs), "started")
        map_outputs = self._run_tasks(map_specs, job)

        slots = max(1, num_partitions)
        gathered: list[list] = [[] for _ in range(slots)]
        part_records = [0] * slots
        part_bytes = [0] * slots
        observing = self._observing
        for task, ((partitions, counts, sizes), counter_dict, info) in enumerate(
            map_outputs
        ):
            counters.merge(Counters.from_dict(counter_dict))
            self._note_worker(info)
            if mode == "direct":
                # What crossed the driver for this task is its manifest.
                manifest_bytes = len(
                    pickle.dumps(partitions, protocol=pickle.HIGHEST_PROTOCOL)
                )
                self.stats.driver_bytes += manifest_bytes
                if observing:
                    self._emit(
                        BytesMoved(
                            time=time.monotonic(),
                            channel="map_manifest",
                            num_bytes=manifest_bytes,
                        )
                    )
            relayed = 0
            for index, part in enumerate(partitions):
                if mode == "memory":
                    gathered[index].extend(part)
                elif mode == "relay":
                    if counts[index]:
                        gathered[index].append(part)
                        self.stats.driver_bytes += len(part)
                        relayed += len(part)
                elif part is not None:  # direct: (path, file_bytes) entry
                    gathered[index].append(part)
                    self.stats.spill_files_written += 1
                    self.stats.spill_bytes_written += part[1]
                    if observing:
                        self._emit(
                            SpillWritten(
                                time=time.monotonic(),
                                kind="map",
                                task_index=task,
                                partition=index,
                                num_bytes=part[1],
                            )
                        )
                part_records[index] += counts[index]
                part_bytes[index] += sizes[index]
            if observing and relayed:
                self._emit(
                    BytesMoved(
                        time=time.monotonic(),
                        channel="map_output",
                        num_bytes=relayed,
                    )
                )
        self._phase_marker(job, "map", len(map_specs), "finished")
        return _ShuffleState(
            mode=mode,
            gathered=gathered,
            part_records=part_records,
            part_bytes=part_bytes,
        )

    def _reduce_phase(
        self,
        job: Job,
        handle: Any,
        state: _ShuffleState,
        *,
        next_stage: NextStage | None = None,
    ) -> list[Any]:
        """Build and run the reduce tasks over gathered map output."""
        scratch = self._reduce_scratch_dir(handle)
        reduce_specs = []
        for index in range(len(state.gathered)):
            part = state.gathered[index]
            reduce_specs.append(
                ReduceTaskSpec(
                    job=handle,
                    records=part if state.mode == "memory" else None,
                    chunks=part if state.mode == "relay" else None,
                    spill_paths=[entry[0] for entry in part]
                    if state.mode == "direct"
                    else None,
                    num_records=state.part_records[index],
                    partition_bytes=state.part_bytes[index],
                    task_index=index,
                    next_stage=next_stage,
                    scratch_dir=scratch,
                )
            )
        self._phase_marker(job, "reduce", len(reduce_specs), "started")
        outputs = self._run_tasks(reduce_specs, job)
        self._phase_marker(job, "reduce", len(reduce_specs), "finished")
        return outputs

    @staticmethod
    def auto(
        workload_hint: int | None = None,
        *,
        max_workers: int | None = None,
        serial_below: int = AUTO_SERIAL_MAX_RECORDS,
        data_plane: str | None = None,
        journal_dir: str | Path | None = None,
    ) -> "Engine":
        """Pick an engine from a workload-size hint — see :func:`choose_engine`."""
        return choose_engine(
            workload_hint,
            max_workers=max_workers,
            serial_below=serial_below,
            data_plane=data_plane,
            journal_dir=journal_dir,
        )

    def close(self) -> None:
        """Release engine resources and close the attached trace sink."""
        sink = getattr(self, "_trace_sink", None)
        if sink is not None:
            sink.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- engine-specific hooks -------------------------------------------------
    def _job_handle(self, job: Job) -> Any:
        """How task specs reference the job (the job itself by default)."""
        return job

    def _release_job(self, handle: Any) -> None:
        """Called once the job's phases are done (noop by default)."""

    def _shuffle_dir(self, handle: Any) -> str:
        """Scratch dir for a job's spill files (direct-mode engines only)."""
        raise NotImplementedError  # pragma: no cover - direct mode only

    def _note_worker(self, info: dict) -> None:
        """Fold one task's worker info into engine stats (noop by default)."""

    def _note_run(self, seconds: float) -> None:
        """Fold one run's wall-clock into engine stats (noop by default)."""

    def _journal_submit(
        self, job: Job, handle: Any, splits: list[Split], num_partitions: int
    ) -> None:
        """Write-ahead the job spec when journaled (noop by default)."""

    def _journal_finish(self, handle: Any) -> None:
        """Retire a finished job's journal state (noop by default)."""

    def _reduce_scratch_dir(self, handle: Any) -> str | None:
        """Engine-owned scratch root for reduce-side external sorts.

        ``None`` (the default) lets each sorter own a private system
        temp dir; engines that return a directory sweep it themselves,
        so scratch from killed attempts cannot leak past the job.
        """
        return None

    def _durable_spills(self) -> bool:
        """True when map spill files must be fsync'd before publication."""
        return False

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        raise NotImplementedError


class SerialEngine(Engine):
    """Run every task in-process, one after another (deterministic).

    Fault-tolerance semantics are the worker-side subset: injected
    crashes/poisons/slow-tasks, retry backoff and the post-hoc attempt
    timeout all apply; worker-kill faults degrade to ordinary task
    failures and hung attempts cannot be preempted (there is no second
    process to kill them from).
    """

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        if not specs:
            return []
        kind = "map" if isinstance(specs[0], MapTaskSpec) else "reduce"
        tracker = AttemptTracker(kind, len(specs), job, bus=self._bus())
        results: dict[int, Any] = {}
        for index in self._dispatch_order(specs):
            attempt = tracker.begin_dispatch(index)
            tracker.mark_running(attempt)
            try:
                output = run_spec(specs[index])
            except Exception:
                tracker.fail(attempt)
                raise
            tracker.complete(attempt, worker_pid=output[2].get("pid"))
            results[index] = output
        return [results[index] for index in range(len(specs))]


def choose_engine(
    workload_hint: int | None = None,
    *,
    max_workers: int | None = None,
    serial_below: int = AUTO_SERIAL_MAX_RECORDS,
    scheduling_policy: SchedulingPolicy | str | None = None,
    trace_sink: Any = None,
    data_plane: str | None = None,
    journal_dir: str | Path | None = None,
) -> Engine:
    """Pick an engine from a workload-size hint (records through the run).

    The single serial/multiprocess crossover used by both
    :meth:`Engine.auto` and :func:`repro.core.runner.auto_pairwise`.
    ``workload_hint`` is the caller's estimate of how many records the
    job pushes through map+shuffle (a scheme's
    ``metrics().communication_records``, or ``len(input_records)``).
    Below ``serial_below`` (default :data:`AUTO_SERIAL_MAX_RECORDS`, the
    engine-scaling benchmark's measured crossover) a
    :class:`SerialEngine` is returned — at small scale pool startup and
    job broadcasts dominate; at or above it, a
    :class:`MultiprocessEngine` with ``max_workers``.  ``None`` (unknown
    workload) conservatively picks serial.  ``scheduling_policy`` and
    ``trace_sink`` are passed through to whichever engine is built;
    ``data_plane`` only to a pooled engine (the serial engine runs
    in-process, where the cache is already shared by definition).
    ``journal_dir`` forces a pooled engine regardless of the hint — the
    durable journal rides the direct shuffle's spill files, which only
    the :class:`MultiprocessEngine` has.
    """
    if workload_hint is not None and workload_hint < 0:
        raise ValueError(f"workload_hint must be >= 0, got {workload_hint}")
    if journal_dir is None and (
        workload_hint is None or workload_hint < serial_below
    ):
        return SerialEngine(
            scheduling_policy=scheduling_policy, trace_sink=trace_sink
        )
    return MultiprocessEngine(
        max_workers=max_workers,
        data_plane=data_plane or "default",
        scheduling_policy=scheduling_policy,
        trace_sink=trace_sink,
        journal_dir=journal_dir,
    )


def _dispose(resources: dict) -> None:
    """Shut down a pooled engine's externals (idempotent; GC-safe).

    Order matters: workers go first so nothing is attached to a shared
    segment when the host unlinks it.
    """
    pool = resources.pop("pool", None)
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
    segments = resources.pop("segments", None)
    if segments is not None:
        segments.close()
    tmpdir = resources.pop("tmpdir", None)
    if tmpdir is not None:
        tmpdir.cleanup()


class MultiprocessEngine(Engine):
    """Fan tasks out over a persistent process pool.

    The pool is created lazily on the first task batch and then reused for
    every later phase and job until :meth:`close` (or garbage collection)
    shuts it down — chained pipeline jobs pay process start-up exactly
    once.  Each job's static parts are broadcast once (see module
    docstring); :attr:`stats` accumulates dispatch metrics across runs.
    ``max_workers=None`` uses the executor default (CPU count); usable as
    a context manager.  ``shuffle_mode`` picks the shuffle data plane
    (see module docstring): ``"direct"`` (default) moves map output
    through attempt-scoped spill files and only manifests cross the
    driver; ``"relay"`` is the legacy plane where the driver gathers and
    forwards encoded chunks.  Outputs and job counters are bit-identical
    either way.  ``data_plane`` picks the broadcast data plane:
    ``"default"`` ships the distributed cache inside every job broadcast
    (each worker unpickles its own copy), ``"shm"`` materializes it once
    per machine in POSIX shared memory (workers attach read-only
    zero-copy views — see :mod:`repro.mapreduce.shm`); where shared
    memory is unavailable the engine silently downgrades to ``"default"``
    (check :attr:`data_plane` after construction).  Outputs are
    bit-identical across data planes too.  ``scheduling_policy`` orders
    dispatch within each phase (fifo by default); ``trace_sink`` receives
    the run's structured events (see :class:`Engine`).

    ``journal_dir`` (direct mode only) attaches a durable
    :class:`~repro.mapreduce.journal.JobJournal`: job specs, attempt
    transitions and spill manifests are fsync'd to
    ``journal_dir/journal.jsonl``, spill files live beside it and are
    fsync'd before publication, and a driver killed mid-job can be
    resumed with :func:`repro.mapreduce.journal.resume_job` — re-running
    only the map tasks whose outputs didn't survive, bit-identically.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        shuffle_mode: str = "direct",
        data_plane: str = "default",
        scheduling_policy: SchedulingPolicy | str | None = None,
        trace_sink: Any = None,
        journal_dir: str | Path | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if shuffle_mode not in SHUFFLE_MODES:
            raise ValueError(
                f"shuffle_mode must be one of {SHUFFLE_MODES}, got {shuffle_mode!r}"
            )
        if data_plane not in DATA_PLANES:
            raise ValueError(
                f"data_plane must be one of {DATA_PLANES}, got {data_plane!r}"
            )
        if journal_dir is not None and shuffle_mode != "direct":
            raise ValueError(
                "journal_dir requires shuffle_mode='direct': the journal's "
                "resumable state is the direct plane's spill files, got "
                f"shuffle_mode={shuffle_mode!r}"
            )
        super().__init__(scheduling_policy=scheduling_policy, trace_sink=trace_sink)
        self.max_workers = max_workers
        self._shuffle_mode = shuffle_mode
        if data_plane == "shm" and not shm_available():
            data_plane = "default"  # no POSIX shm here: degrade, don't fail
        self._data_plane = data_plane
        self.stats = EngineStats()
        self._job_seq = 0
        self._journal: JobJournal | None = None
        #: ResumePlan to consume on the next map phase (set by resume_job)
        self._pending_resume: Any = None
        #: (job uid, map task index) -> driver-side replay count
        self._replay_attempts: dict[tuple[str, int], int] = {}
        if journal_dir is not None:
            self._journal = JobJournal(journal_dir, stats=self.stats)
            self.events.subscribe(self._journal.record_event)
        self._resources: dict = {}
        self._finalizer = weakref.finalize(self, _dispose, self._resources)

    @property
    def shuffle_mode(self) -> str:
        """The engine's shuffle data plane (``"direct"`` or ``"relay"``)."""
        return self._shuffle_mode

    @property
    def data_plane(self) -> str:
        """The engine's broadcast data plane (``"default"`` or ``"shm"``).

        Reflects the *effective* plane: an engine built with
        ``data_plane="shm"`` on a box without working POSIX shared memory
        reports ``"default"`` here.
        """
        return self._data_plane

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and remove broadcast files (engine reusable)."""
        _dispose(self._resources)
        journal = self._journal
        if journal is not None:
            # Unfinished journaled jobs keep their spill files — resume
            # needs them — but per-attempt extsort scratch is never
            # salvageable: sweep it so killed attempts cannot leak dirs.
            for shuffle_dir in journal.dir.glob("*-shuffle"):
                for scratch in shuffle_dir.glob("extsort-*"):
                    shutil.rmtree(scratch, ignore_errors=True)
            journal.close()
        super().close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        pool = self._resources.get("pool")
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=worker_init
            )
            self._resources["pool"] = pool
            self.stats.pools_created += 1
        return pool

    def _broadcast_dir(self) -> Path:
        tmpdir = self._resources.get("tmpdir")
        if tmpdir is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-engine-")
            self._resources["tmpdir"] = tmpdir
        return Path(tmpdir.name)

    def _segment_host(self) -> SegmentHost:
        host = self._resources.get("segments")
        if host is None:
            host = SegmentHost()
            self._resources["segments"] = host
        return host

    # -- engine hooks ----------------------------------------------------------
    def _job_handle(self, job: Job) -> JobRef:
        """Broadcast the job's static parts once; tasks carry a tiny ref.

        On the shm plane a job with a distributed cache is split: the
        cache goes to a per-machine shared segment (one per distinct
        cache object — jobs sharing a cache dict share the segment) and
        the broadcast pickle ships only the cache-less head plus the
        :class:`~repro.mapreduce.shm.SegmentRef`.  If materialization
        fails (e.g. ``/dev/shm`` filled up mid-run) the job falls back to
        the default plane on its own.
        """
        self._job_seq += 1
        # Journaled uids must not collide across driver processes: the
        # journal directory outlives drivers by design.
        uid = (
            f"job-{os.getpid()}-{self._job_seq}"
            if self._journal is not None
            else f"job-{self._job_seq}"
        )
        cache_ref = None
        if self._data_plane == "shm" and job.cache:
            try:
                cache_ref, created = self._segment_host().materialize(uid, job.cache)
            except OSError:
                cache_ref = None
            else:
                if created:
                    self.stats.shm_segments += 1
                    self.stats.shm_bytes += created
                job = dataclasses.replace(job, cache={})
        path = self._broadcast_dir() / f"{uid}.pkl"
        data = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(data)
        self.stats.jobs_broadcast += 1
        self.stats.broadcast_bytes += len(data)
        return JobRef(uid=uid, path=str(path), cache_ref=cache_ref)

    def _release_job(self, handle: Any) -> None:
        if isinstance(handle, JobRef):
            if handle.cache_ref is not None:
                self._segment_host().release(handle.uid)
            base = Path(handle.path)
            base.unlink(missing_ok=True)
            for marker in base.parent.glob(f"{base.stem}.*.began"):
                marker.unlink(missing_ok=True)
            # The job's spill files go with it — including orphans left by
            # lost attempts and losing speculative dispatches.
            shutil.rmtree(base.parent / f"{handle.uid}-shuffle", ignore_errors=True)

    def _shuffle_dir(self, handle: Any) -> str:
        assert isinstance(handle, JobRef)
        if self._journal is not None:
            # Journaled spills live beside the journal describing them,
            # on storage that outlives this driver process.
            path = self._journal.shuffle_dir(handle.uid)
        else:
            path = Path(handle.path).parent / f"{handle.uid}-shuffle"
        path.mkdir(exist_ok=True)
        return str(path)

    def _reduce_scratch_dir(self, handle: Any) -> str | None:
        # Engine-owned scratch root: reduce-side external sorts spill
        # under the job's shuffle dir, so scratch from killed attempts is
        # swept with the job instead of leaking system temp dirs.
        if isinstance(handle, JobRef):
            return self._shuffle_dir(handle)
        return None

    def _durable_spills(self) -> bool:
        # The journal must never reference a spill file the disk doesn't
        # hold: fsync map spills before their manifests are journaled.
        return self._journal is not None

    def _journal_submit(
        self, job: Job, handle: Any, splits: list[Split], num_partitions: int
    ) -> None:
        if self._journal is not None:
            assert isinstance(handle, JobRef)
            self._journal.submit(handle.uid, job, splits, num_partitions)

    def _journal_finish(self, handle: Any) -> None:
        if self._journal is not None and isinstance(handle, JobRef):
            # Journal first, then artifacts: a crash between the two
            # leaks files rather than resurrecting a finished job.
            self._journal.finish(handle.uid)
            shutil.rmtree(
                self._journal.shuffle_dir(handle.uid), ignore_errors=True
            )
            self._journal.spec_path(handle.uid).unlink(missing_ok=True)

    def _note_worker(self, info: dict) -> None:
        self.stats.worker_pids.add(info["pid"])
        if info["loaded"]:
            self.stats.broadcast_loads += 1
        # A fused reduce task may also have localized the *next* job.
        self.stats.broadcast_loads += info.get("extra_loads", 0)
        self.stats.mmap_reads += info.get("mmap_reads", 0)
        self.stats.bytes_copied += info.get("bytes_copied", 0)
        self.stats.spill_files_damaged += info.get("spills_damaged", 0)

    def _note_run(self, seconds: float) -> None:
        self.stats.run_seconds += seconds

    # -- durability ------------------------------------------------------------
    def _journal_map_result(self, spec: Any, output: Any) -> None:
        """Journal one completed map task's spill manifest and counters."""
        assert self._journal is not None and isinstance(spec.job, JobRef)
        (entries, counts, sizes), counter_dict, _info = output
        self._journal.map_result(
            spec.job.uid, spec.task_index, entries, counts, sizes, counter_dict
        )

    def _recover_spill_corruption(
        self, exc: SpillCorruptionError, spec: Any
    ) -> bool:
        """Hadoop fetch-failure semantics for a corrupt map spill file.

        A reduce attempt that hit a corrupt or truncated spill names it
        in ``exc.path``.  The driver — not the reducer — owns the fix:
        quarantine the file (renamed aside for post-mortem), re-execute
        the producing map task from its original split outside the retry
        budget, and patch this reducer's manifest to the fresh file.
        Replayed counters are discarded — the winning attempt already
        contributed them — so job counters stay bit-identical to a
        corruption-free run.  Returns False when the failure isn't
        recoverable this way (unparseable producer, file not among this
        reducer's inputs, replay budget exhausted); the normal failure
        path then takes over.
        """
        context = self._map_context
        if (
            context is None
            or not isinstance(spec, ReduceTaskSpec)
            or spec.spill_paths is None
        ):
            return False
        corrupt = exc.path
        if corrupt not in spec.spill_paths:
            return False  # already recovered for a sibling attempt
        parsed = parse_spill_file_name(os.path.basename(corrupt))
        if parsed is None:
            return False
        file_kind, task_index, partition = parsed
        job, handle, splits, num_partitions = context
        if (
            file_kind != "map"
            or partition != spec.task_index
            or not isinstance(handle, JobRef)
            or task_index >= len(splits)
        ):
            return False
        key = (handle.uid, task_index)
        replays = self._replay_attempts.get(key, 0)
        if replays >= num_partitions + 2:
            return False  # persistent re-corruption: surface the error
        self._replay_attempts[key] = replays + 1

        self.stats.spill_corruptions += 1
        try:
            os.replace(corrupt, corrupt + ".quarantined")
            self.stats.spill_files_quarantined += 1
        except OSError:
            pass  # already moved or gone; the replay still supersedes it
        if self._observing:
            self._emit(
                SpillQuarantined(
                    time=time.monotonic(),
                    path=corrupt,
                    kind=file_kind,
                    task_index=task_index,
                    partition=partition,
                    reason=exc.reason,
                )
            )

        # Attempt numbers above job.max_attempts cannot collide with any
        # worker-side attempt's files; the replay runs without fault
        # injection (spill faults fire on first attempts only).
        replay_spec = MapTaskSpec(
            job=handle,
            records=splits[task_index].records,
            num_partitions=num_partitions,
            encode=True,
            spill_dir=self._shuffle_dir(handle),
            task_index=task_index,
            first_attempt=job.max_attempts + self._replay_attempts[key],
            durable_spill=self._durable_spills(),
        )
        entries, _counts, _sizes = replay_map_task(job, replay_spec)
        self.stats.tasks_replayed += 1
        entry = entries[partition]
        if entry is None:
            return False  # pragma: no cover - replay dropped the partition
        spec.spill_paths[spec.spill_paths.index(corrupt)] = entry[0]
        return True

    # -- fused chaining --------------------------------------------------------
    #: fusability predicate, re-exposed for introspection/tests
    _fusable = staticmethod(fusable)

    def run_chain(
        self,
        jobs: Sequence[Job],
        input_records: Sequence[KeyValue],
        *,
        num_map_tasks: int | None = None,
        fuse: bool | None = None,
    ) -> list[JobResult]:
        """Run a chain, fusing adjacent stages where safe (direct mode).

        See :mod:`repro.mapreduce.fusion` for the mechanism and exact
        counter semantics.  ``fuse=None`` (the default) and ``fuse=True``
        both fuse when safe; ``fuse=False`` forces the plain sequential
        chain.  Relay mode has no spill files to hand over, so it never
        fuses.
        """
        if (
            fuse is False
            or self._shuffle_mode != "direct"
            # Fused stages publish fuse-kind spill files that cannot be
            # replayed from a map spec; journaled chains run stage by
            # stage so every stage stays independently resumable.
            or self._journal is not None
            or len(jobs) < 2
        ):
            return super().run_chain(
                jobs, input_records, num_map_tasks=num_map_tasks
            )
        return run_fused_chain(self, jobs, input_records, num_map_tasks=num_map_tasks)

    def _teardown_pool(self, *, kill: bool = False) -> None:
        """Drop the current pool; ``kill`` terminates workers first.

        Killing is how hung tasks are cancelled: a worker stuck in task
        code never returns on its own, so the driver terminates the
        processes and lets the next :meth:`_ensure_pool` respawn a fresh
        pool (new workers re-localize broadcasts lazily from disk).
        """
        pool = self._resources.pop("pool", None)
        if pool is None:
            return
        if kill:
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        """Dispatch one phase's tasks with recovery and speculation.

        A future-per-dispatch loop replaces ``pool.map`` so the driver can
        (a) respawn a broken pool and re-run only the lost in-flight
        tasks, (b) kill attempts that hang past the task timeout, and
        (c) launch speculative backup attempts for end-of-phase
        stragglers.  The :class:`AttemptTracker` owns attempt numbering,
        lost-attempt charging, and speculation decisions; the
        :class:`SchedulingPolicy` orders dispatch.  Results are keyed by
        task index, so output order — and therefore job results — is
        identical to :class:`SerialEngine` no matter which attempt of a
        task wins or which order the policy dispatched.
        """
        if not specs:
            return []
        kind = "map" if isinstance(specs[0], MapTaskSpec) else "reduce"
        timeout = job.config.get("task_timeout_seconds")
        limit = float(timeout) if timeout is not None else None

        total = len(specs)
        tracker = AttemptTracker(kind, total, job, bus=self._bus())
        order = self._dispatch_order(specs)
        results: dict[int, Any] = {}
        journal = (
            self._journal
            if kind == "map"
            and self._journal is not None
            and getattr(specs[0], "spill_dir", None) is not None
            else None
        )
        resume = None
        if kind == "map" and self._pending_resume is not None:
            resume, self._pending_resume = self._pending_resume, None
        inflight: dict[Future, int] = {}
        attempts: dict[Future, Any] = {}  # Future -> TaskAttempt
        launched_at: dict[Future, float] = {}
        started_at: dict[Future, float] = {}
        budget: dict[Future, float] = {}
        errors: dict[int, BaseException] = {}

        def active_attempts(index: int) -> int:
            return sum(1 for i in inflight.values() if i == index)

        def dispatch(index: int, *, speculative: bool = False) -> None:
            spec = specs[index]
            spec.first_attempt = tracker.next_attempt[index]
            spec.speculative = speculative
            payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
            self.stats.spec_bytes += len(payload)
            self.stats.tasks_dispatched += 1
            future = self._ensure_pool().submit(run_pickled_spec, payload)
            now = time.monotonic()
            inflight[future] = index
            attempts[future] = tracker.begin_dispatch(
                index, speculative=speculative, now=now
            )
            launched_at[future] = now
            if limit is not None:
                # A started attempt may legitimately consume the whole
                # remaining retry budget worker-side (each local retry gets
                # its own post-hoc window) before the driver declares it
                # hung; the slack absorbs dispatch/pickling overhead.
                remaining = job.max_attempts - tracker.next_attempt[index] + 1
                budget[future] = limit * remaining + max(1.0, limit)

        def resolve(index: int, future: Future, output: Any, now: float) -> None:
            results[index] = output
            errors.pop(index, None)
            tracker.complete(
                attempts[future], now=now, worker_pid=output[2].get("pid")
            )
            if journal is not None:
                self._journal_map_result(specs[index], output)
            # Any sibling attempt still out is wasted speculative work:
            # cancel it if it never started, discard its output otherwise.
            for other, other_index in list(inflight.items()):
                if other_index == index:
                    self.stats.speculative_wasted += 1
                    tracker.kill(attempts[other], now=now)
                    if other.cancel():
                        inflight.pop(other, None)

        def restart_pool() -> None:
            """Respawn the pool; re-dispatch and charge unfinished tasks.

            A task is charged one lost attempt iff its current attempt's
            began-marker exists — i.e. a worker actually started it before
            the pool died.  Queued tasks re-dispatch on the same attempt
            number, so their attempt-pinned faults and retry budget are
            untouched.
            """
            self.stats.pool_restarts += 1
            now = time.monotonic()
            for future, attempt in attempts.items():
                if future in inflight:
                    tracker.kill(attempt, now=now)
            charged: set[int] = set()
            for index in range(total):
                if index in results or index in charged:
                    continue
                handle = specs[index].job
                if isinstance(handle, JobRef) and marker_path(
                    handle, kind, specs[index].task_index, tracker.next_attempt[index]
                ).exists():
                    charged.add(index)
            for index in charged:
                tracker.charge_lost(index)
            inflight.clear()
            attempts.clear()
            launched_at.clear()
            started_at.clear()
            budget.clear()
            self._teardown_pool(kill=True)
            host = self._resources.get("segments")
            if host is not None:
                # A crashed worker's resource tracker may have swept
                # segments it attached; rebuild them under their original
                # names so already-pickled refs in re-dispatched specs
                # keep resolving.
                self.stats.shm_segments_revived += host.revive()
            for index in order:
                if index in results:
                    continue
                if tracker.exhausted(index):
                    raise tracker.lost_error(index, specs[index].task_index)
                self.stats.tasks_relaunched += 1
                dispatch(index)

        if resume is not None:
            # Re-attach the dead run's surviving map outputs: salvaged
            # tasks contribute their journaled manifests and counters
            # verbatim (bit-identical to re-execution), re-journaled
            # under this run's uid; only the rest re-run.
            for index, salvaged in sorted(resume.salvage.items()):
                if index >= total:
                    continue
                entries, counts, sizes, counter_dict = salvaged
                output = (
                    (entries, counts, sizes),
                    counter_dict,
                    {"pid": os.getpid(), "loaded": False},
                )
                results[index] = output
                tracker.completed.add(index)
                self.stats.tasks_resumed += 1
                if journal is not None:
                    self._journal_map_result(specs[index], output)
            self.stats.tasks_replayed += total - len(results)

        for index in order:
            if index in results:
                continue
            dispatch(index)

        while len(results) < total:
            if not inflight:  # pragma: no cover - defensive
                raise RuntimeError("engine dispatch lost track of in-flight tasks")
            done, _ = wait(
                list(inflight), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for future in list(inflight):
                if future not in started_at and future.running():
                    started_at[future] = now
                    tracker.mark_running(attempts[future], now=now)
            broken = False
            try:
                for future in done:
                    index = inflight.pop(future, None)
                    if index is None or index in results or future.cancelled():
                        continue  # late loser of an already-resolved task
                    exc = future.exception()
                    if exc is None:
                        resolve(index, future, future.result(), now)
                        continue
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                        continue
                    if isinstance(
                        exc, SpillCorruptionError
                    ) and self._recover_spill_corruption(exc, specs[index]):
                        # The reducer's *input* was bad, not the attempt:
                        # the corrupt file is quarantined, its producing
                        # map attempt replayed, and the spec patched to
                        # the fresh file — kill (not fail) so the
                        # reducer's own retry budget stays untouched.
                        tracker.kill(attempts[future], now=now)
                        dispatch(index)
                        continue
                    tracker.fail(attempts[future], now=now)
                    errors[index] = exc
                    if active_attempts(index) == 0:
                        # No backup attempt can save this task: fail the
                        # job like the serial engine would.
                        for straggler in inflight:
                            straggler.cancel()
                            tracker.kill(attempts[straggler], now=now)
                        raise exc

                if not broken and limit is not None:
                    hung_futures = {
                        future
                        for future, begun in started_at.items()
                        if future in inflight
                        and inflight[future] not in results
                        and now - begun > budget[future]
                    }
                    if hung_futures:
                        self.stats.tasks_timed_out += len(
                            {inflight[future] for future in hung_futures}
                        )
                        for future in hung_futures:
                            tracker.kill(attempts[future], timed_out=True, now=now)
                        restart_pool()
                        continue

                if not broken and tracker.in_speculation_window():
                    threshold = tracker.straggler_threshold()
                    for future, index in list(inflight.items()):
                        if index in results or active_attempts(index) > 1:
                            continue
                        begun = started_at.get(future)
                        if begun is not None and now - begun > threshold:
                            self.stats.speculative_launched += 1
                            dispatch(index, speculative=True)
            except BrokenProcessPool:
                broken = True
            if broken:
                restart_pool()

        return [results[index] for index in range(total)]
