"""Execution engines: run a :class:`~repro.mapreduce.job.Job` over splits.

Two engines share one code path per task:

- :class:`SerialEngine` — everything in-process, deterministic, the default
  for tests and validation;
- :class:`MultiprocessEngine` — map and reduce tasks fan out over a
  **persistent** ``ProcessPoolExecutor`` that lives across map/reduce
  phases and across the chained jobs of a pipeline.  Mapper/reducer
  factories, cache payloads and records must be picklable; results are
  bit-identical to the serial engine (stable hashing + sorted shuffle make
  order deterministic).

The multiprocess engine is built around two ideas from the paper's cost
model (replication rate × communication cost is the governing tradeoff):

**One-shot job broadcast.**  A job's static parts — mapper/reducer
factories, config, and the distributed cache holding the dataset — are
pickled *once per job* to a broadcast file; each pool worker loads and
caches it on first touch (once per worker, like Hadoop's DistributedCache
localization).  Task specs shrink to just their record slices instead of
carrying a full copy of the job, so a b-task run no longer ships the cache
b times.  :attr:`MultiprocessEngine.stats` meters what the driver actually
pickled.

**Streaming shuffle.**  Map tasks return pre-encoded partition chunks plus
per-partition record/byte sums; the driver gathers chunks opaquely and
forwards them to reduce tasks without ever decoding a record, and meters
``SHUFFLE_BYTES`` from the map-reported sums (no driver-side re-pickling).
Reduce partitions whose accounted size exceeds the spill threshold are
sorted through :mod:`repro.mapreduce.extsort` instead of an in-memory
``sorted()``.

Both engines meter the framework counters (records and bytes at every
stage) that the evaluation harness compares against the paper's Table-1
predictions.  Engine-level dispatch metrics (bytes pickled, broadcast
loads) are deliberately kept *out* of job counters so serial and pooled
runs stay bit-identical.

**Fault tolerance.**  Task execution mirrors Hadoop 0.20's fault model
(the paper's premise that commodity-cluster failures are survivable):

- every attempt runs under an optional per-task wall-clock budget
  (``config["task_timeout_seconds"]``) — an over-budget attempt fails and
  retries; on the pooled engine a *hung* attempt is killed with its
  worker pool and the lost tasks re-dispatched;
- retries back off exponentially with deterministic jitter
  (``config["retry_backoff_seconds"]``);
- a dead worker process (``BrokenProcessPool``) is recovered
  transparently: the pool is respawned, new workers re-localize the job
  broadcast lazily from the (still on disk) broadcast file, and only the
  tasks that were in flight are re-run — each charged one attempt;
- near the end of a task batch, stragglers get Hadoop-style speculative
  backup attempts (``config["speculative_execution"]``); the first
  finisher wins and the loser's output is discarded, so results stay
  bit-identical to :class:`SerialEngine`;
- deterministic fault injection (``config["fault_plan"]``, a
  :class:`~repro.mapreduce.faults.FaultPlan`) makes all of the above
  reproducibly testable.

Attempt numbering is global: attempts lost driver-side (dead worker,
hang kill) advance the same 1-based counter the worker-side retry loop
uses, so ``max_attempts`` bounds the *total* effort per task and
attempt-pinned injected faults never re-fire on re-dispatch.
"""

from __future__ import annotations

import math
import os
import pickle
import statistics
import tempfile
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from .faults import FaultPlan, PoisonedRecordError, _draw

from .counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from .extsort import ExternalSorter, sorted_groups
from .job import (
    Context,
    Job,
    JobResult,
    KeyValue,
    TaskFailedError,
    TaskLostError,
    TaskTimeoutError,
)
from .serialization import decode_records, encode_records, record_size
from .shuffle import partition_with_sizes, sort_and_group
from .splits import Split, split_by_count

#: Default records per map split when neither ``num_map_tasks`` nor the
#: job's ``config["records_per_split"]`` is given.  ``num_map_tasks``
#: always wins over the per-split size: when the caller fixes the task
#: count, records are carved into exactly that many near-equal splits and
#: this constant is ignored.
DEFAULT_RECORDS_PER_SPLIT = 5000

#: Reduce partitions whose accounted byte size (per-partition sums
#: reported by map tasks) exceeds this threshold are sorted via the
#: external merge sort with the threshold as its memory budget, instead of
#: an in-memory ``sorted()``.  Override per job with
#: ``config["spill_threshold_bytes"]``.
DEFAULT_SPILL_THRESHOLD_BYTES = 64 * 1024 * 1024

#: Below this many records, :meth:`Engine.auto` picks :class:`SerialEngine`.
#: The engine-scaling benchmark (BENCH_engine_scaling.json) shows the
#: crossover empirically: at small scale (v=60 design-scheme docsim, a few
#: thousand shuffled records) the serial engine beats the pooled one —
#: pool startup plus per-job broadcasts cost more than the computation —
#: while large record volumes amortize the dispatch overhead.
AUTO_SERIAL_MAX_RECORDS = 20_000

#: Framework counters for the reduce-side spill path (deterministic across
#: engines: both decide from the same per-partition sums and threshold).
REDUCE_SPILLED_RECORDS = "reduce_spilled_records"
REDUCE_SPILL_RUNS = "reduce_spill_runs"

#: Framework counter: failed attempts absorbed by retries (equals
#: ``task_retries`` per winning task, but named so retry storms are
#: legible in :class:`~repro.mapreduce.job.JobResult` counters).  Lost
#: attempts (worker death, hang kill) are charged too — the winning
#: re-dispatch reports them, so a recovered worker crash is visible in
#: job counters even though no exception ever reached the retry loop.
TASK_FAILURES = "task_failures"
TASK_RETRIES = "task_retries"
#: Framework counter: total attempts used by winning tasks (1 per task on
#: a clean run; retries and lost attempts raise it).
TASK_ATTEMPTS = "task_attempts"
#: Framework counter: attempts that failed the post-hoc wall-clock check
#: (attempt finished but over ``task_timeout_seconds``).  Driver-side hang
#: kills are metered separately in :attr:`EngineStats.tasks_timed_out`.
TASKS_TIMED_OUT = "tasks_timed_out"

#: driver polling cadence for completion/hang/speculation checks
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class _JobRef:
    """Driver-side handle to a broadcast job: workers load it lazily."""

    uid: str
    path: str


@dataclass
class _MapTaskSpec:
    """One map task: its record slice plus a handle to the shared job.

    ``job`` is either the :class:`Job` itself (serial engine) or a
    :class:`_JobRef` pointing at the engine's broadcast file (pooled
    engine) — the spec no longer carries the job's cache/config, which is
    what keeps per-task pickling proportional to the records alone.
    """

    job: Any
    records: list[KeyValue]
    num_partitions: int
    #: pre-encode partition chunks worker-side (pooled engine only)
    encode: bool = False
    #: position of this task within its phase (fault plans key on it)
    task_index: int = 0
    #: 1-based global attempt this dispatch starts at (> 1 after the
    #: driver lost earlier attempts to a dead/hung worker)
    first_attempt: int = 1
    #: True for a speculative backup dispatch of a straggling task
    speculative: bool = False


@dataclass
class _ReduceTaskSpec:
    """One reduce task: its partition, raw or as pre-encoded chunks."""

    job: Any
    records: list[KeyValue] | None
    chunks: list[bytes] | None
    #: accounted partition size (map-reported sums) driving the spill path
    partition_bytes: int = 0
    task_index: int = 0
    first_attempt: int = 1
    speculative: bool = False


# -- worker-side job registry -------------------------------------------------
#: jobs this worker has loaded from broadcast files, keyed by _JobRef.uid
_WORKER_JOBS: dict[str, Job] = {}
_WORKER_JOB_CAP = 8

#: True inside pool worker processes (set by the initializer).  Injected
#: worker-kill faults only take the process down when this is set; the
#: serial engine degrades them to ordinary task failures.
_IS_POOL_WORKER = False


def _worker_init() -> None:
    """Pool initializer: start every worker with an empty job registry.

    With the ``fork`` start method workers would otherwise inherit
    whatever the driver process had resident; clearing keeps the
    load-once-per-worker accounting honest.
    """
    global _IS_POOL_WORKER
    _IS_POOL_WORKER = True
    _WORKER_JOBS.clear()


def _resolve_job(handle: Any) -> tuple[Job, dict]:
    """Turn a spec's job handle into the actual Job (loading at most once).

    Returns ``(job, info)`` where ``info`` records the executing pid and
    whether this call localized the broadcast (i.e. the one-shot cache
    broadcast happened here).  The driver folds ``info`` into
    :class:`EngineStats`, never into job counters.
    """
    if isinstance(handle, Job):
        return handle, {"pid": os.getpid(), "loaded": False}
    job = _WORKER_JOBS.get(handle.uid)
    if job is not None:
        return job, {"pid": os.getpid(), "loaded": False}
    with open(handle.path, "rb") as fh:
        job = pickle.load(fh)
    _WORKER_JOBS[handle.uid] = job
    while len(_WORKER_JOBS) > _WORKER_JOB_CAP:
        _WORKER_JOBS.pop(next(iter(_WORKER_JOBS)))
    return job, {"pid": os.getpid(), "loaded": True}


def _marker_path(handle: _JobRef, kind: str, task_index: int, attempt: int) -> Path:
    """Attempt-began marker: proves to the driver an attempt ran at all.

    Workers touch it at the start of every attempt (same directory as the
    job broadcast).  When the pool dies, the driver charges a lost attempt
    only to tasks whose current attempt's marker exists — queued tasks
    that never started are re-dispatched free, exactly like Hadoop
    re-queues (rather than fails) tasks from a lost TaskTracker.
    """
    base = Path(handle.path)
    return base.parent / f"{base.stem}.{kind}.{task_index}.{attempt}.began"


def _attempt_marker(handle: Any, kind: str, task_index: int):
    """Worker-side marker writer for pooled specs (None for in-process)."""
    if not isinstance(handle, _JobRef):
        return None

    def mark(attempt: int) -> None:
        try:
            _marker_path(handle, kind, task_index, attempt).touch()
        except OSError:  # pragma: no cover - marker loss only skews charging
            pass

    return mark


def _execute_map_task(spec: _MapTaskSpec) -> tuple[tuple, dict, dict]:
    """Run one map task with retries.

    Returns ``((partitions, partition_records, partition_bytes),
    counters, info)`` where ``partitions`` holds encoded chunks when
    ``spec.encode`` is set, raw record lists otherwise.
    """
    job, info = _resolve_job(spec.job)
    (partitions, counts, sizes), counters = _with_retries(
        "map",
        job,
        lambda attempt: _map_attempt(job, spec, attempt),
        task_index=spec.task_index,
        first_attempt=spec.first_attempt,
        speculative=spec.speculative,
        marker=_attempt_marker(spec.job, "map", spec.task_index),
    )
    if spec.encode:
        partitions = [encode_records(part) for part in partitions]
    return (partitions, counts, sizes), counters, info


def _map_attempt(job: Job, spec: _MapTaskSpec, attempt: int) -> tuple[tuple, dict]:
    """One attempt of a map task (fresh mapper + context)."""
    plan: FaultPlan | None = job.config.get("fault_plan")
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    mapper = job.mapper()
    mapper.setup(context)
    for ordinal, (key, value) in enumerate(spec.records):
        if plan is not None and plan.poisons(
            "map", spec.task_index, attempt, ordinal, speculative=spec.speculative
        ):
            raise PoisonedRecordError(
                f"poisoned record {ordinal} in map task {spec.task_index} "
                f"(attempt {attempt})"
            )
        counters.increment(FRAMEWORK_GROUP, MAP_INPUT_RECORDS)
        mapper.map(key, value, context)
    mapper.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS, len(output))

    if job.combiner is not None:
        # Combined output differs from raw map output, so the raw bytes
        # must be measured before combining; the partition pass below
        # re-measures the (smaller) combined records for shuffle volume.
        counters.increment(
            FRAMEWORK_GROUP,
            MAP_OUTPUT_BYTES,
            sum(record_size(k, v) for k, v in output),
        )
        counters.increment(FRAMEWORK_GROUP, COMBINE_INPUT_RECORDS, len(output))
        combiner = job.combiner()
        combine_context = Context(counters, cache=job.cache, config=job.config)
        combiner.setup(combine_context)
        for key, values in sort_and_group(output, job.sort_key):
            combiner.reduce(key, values, combine_context)
        combiner.cleanup(combine_context)
        output = combine_context.drain()
        counters.increment(FRAMEWORK_GROUP, COMBINE_OUTPUT_RECORDS, len(output))

    if spec.num_partitions == 0:  # map-only job: single pseudo-partition
        total = sum(record_size(k, v) for k, v in output)
        if job.combiner is None:
            counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, total)
        return ([output], [len(output)], [total]), counters.as_dict()

    partitions, sizes = partition_with_sizes(
        output, spec.num_partitions, job.partitioner
    )
    if job.combiner is None:
        # Without a combiner the partitioned records *are* the map output;
        # one record_size pass serves both counters.
        counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, sum(sizes))
    counts = [len(part) for part in partitions]
    return (partitions, counts, sizes), counters.as_dict()


def _execute_reduce_task(spec: _ReduceTaskSpec) -> tuple[list[KeyValue], dict, dict]:
    """Run one reduce task (with retries) over its (unsorted) partition."""
    job, info = _resolve_job(spec.job)
    if spec.chunks is not None:
        records = [record for chunk in spec.chunks for record in decode_records(chunk)]
    else:
        records = spec.records or []
    output, counters = _with_retries(
        "reduce",
        job,
        lambda attempt: _reduce_attempt(job, records, spec.partition_bytes),
        task_index=spec.task_index,
        first_attempt=spec.first_attempt,
        speculative=spec.speculative,
        marker=_attempt_marker(spec.job, "reduce", spec.task_index),
    )
    return output, counters, info


def _backoff_seconds(base: float, kind: str, task_index: int, attempt: int) -> float:
    """Exponential backoff with deterministic full jitter before ``attempt``.

    The window doubles per retry (attempt 2 waits ~``base``, attempt 3
    ~``2·base``, ...); the actual delay is a uniform draw from the upper
    half of the window, keyed by task identity so reruns sleep the same.
    """
    window = base * (2 ** max(0, attempt - 2))
    return window * (0.5 + 0.5 * _draw(0, kind, task_index, f"backoff{attempt}"))


def _with_retries(
    kind: str,
    job: Job,
    attempt_fn: Callable[[int], Any],
    *,
    task_index: int = 0,
    first_attempt: int = 1,
    speculative: bool = False,
    marker: Callable[[int], None] | None = None,
) -> Any:
    """Hadoop's attempt loop: re-run a failed task up to job.max_attempts.

    Each retry gets a completely fresh attempt (new task object, new
    context, new counters), so partial effects of a failed attempt never
    leak — the engine only ever keeps a *successful* attempt's output.
    Every failed attempt's exception is chained to the previous one via
    ``__cause__`` (the full retry history survives in the traceback) and
    counted: the winning attempt's counters carry ``task_retries``,
    ``task_failures`` and ``task_attempts`` so retry storms show up in job
    results — including attempts lost *before* this loop ran
    (``first_attempt > 1`` means the driver already lost that many to dead
    workers, and they are charged here on success).

    Per attempt, in order: optional injected faults fire
    (``config["fault_plan"]``), the attempt runs under the post-hoc
    wall-clock check (``config["task_timeout_seconds"]``), and failures
    sleep an exponentially growing, deterministically jittered backoff
    (``config["retry_backoff_seconds"]``) before the next attempt.
    """
    plan: FaultPlan | None = job.config.get("fault_plan")
    timeout = job.config.get("task_timeout_seconds")
    limit = float(timeout) if timeout is not None else None
    backoff = float(job.config.get("retry_backoff_seconds", 0.0))
    failures: list[BaseException] = []
    timeouts = 0
    attempt = first_attempt
    while attempt <= job.max_attempts:
        if failures and backoff > 0:
            time.sleep(_backoff_seconds(backoff, kind, task_index, attempt))
        try:
            if marker is not None:
                marker(attempt)
            # The clock starts before injected faults so a SlowFault delay
            # counts as attempt time — injected stragglers trip the same
            # timeout a genuinely slow attempt would.
            started = time.monotonic()
            if plan is not None:
                plan.fire(
                    kind,
                    task_index,
                    attempt,
                    speculative=speculative,
                    in_worker=_IS_POOL_WORKER,
                )
            result, counters = attempt_fn(attempt)
            elapsed = time.monotonic() - started
            if limit is not None and elapsed > limit:
                raise TaskTimeoutError(kind, task_index, attempt, elapsed, limit)
        except Exception as exc:  # noqa: BLE001 - task code may raise anything
            if failures:
                exc.__cause__ = failures[-1]
            failures.append(exc)
            if isinstance(exc, TaskTimeoutError):
                timeouts += 1
            attempt += 1
            continue
        lost = first_attempt - 1
        fail_count = len(failures) + lost
        counters.setdefault(FRAMEWORK_GROUP, {})
        framework = counters[FRAMEWORK_GROUP]
        framework[TASK_ATTEMPTS] = framework.get(TASK_ATTEMPTS, 0) + attempt
        if fail_count:
            framework[TASK_RETRIES] = framework.get(TASK_RETRIES, 0) + fail_count
            framework[TASK_FAILURES] = framework.get(TASK_FAILURES, 0) + fail_count
        if timeouts:
            framework[TASKS_TIMED_OUT] = framework.get(TASKS_TIMED_OUT, 0) + timeouts
        return result, counters
    if not failures:  # budget consumed entirely by driver-side lost attempts
        lost_error = TaskLostError(kind, task_index, first_attempt - 1)
        raise TaskFailedError(kind, job.max_attempts, lost_error, causes=[lost_error])
    raise TaskFailedError(
        kind, job.max_attempts, failures[-1], causes=failures
    ) from failures[-1]


def _reduce_attempt(
    job: Job, records: list[KeyValue], partition_bytes: int
) -> tuple[list[KeyValue], dict]:
    """One attempt of a reduce task."""
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    assert job.reducer is not None  # guarded by Job validation
    reducer = job.reducer()
    reducer.setup(context)
    counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_RECORDS, len(records))

    threshold = int(
        job.config.get("spill_threshold_bytes", DEFAULT_SPILL_THRESHOLD_BYTES)
    )
    sorter: ExternalSorter | None = None
    if partition_bytes > threshold:
        # Partition beyond the spill threshold: external merge sort with
        # the threshold as memory budget.  Deterministic and identical to
        # the in-memory path (same ordering + stable arrival-order ties).
        sorter = ExternalSorter(memory_budget=max(1, threshold), sort_key=job.sort_key)
        sorter.add_all(records)
        groups = sorted_groups(sorter)
    else:
        groups = sort_and_group(records, job.sort_key)

    try:
        for key, values in groups:
            counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_GROUPS)
            if job.value_sort_key is not None:
                values = iter(sorted(values, key=job.value_sort_key))
            reducer.reduce(key, values, context)
    finally:
        if sorter is not None:
            counters.increment(
                FRAMEWORK_GROUP, REDUCE_SPILLED_RECORDS, sorter.spilled_records
            )
            counters.increment(FRAMEWORK_GROUP, REDUCE_SPILL_RUNS, sorter.num_runs)
            sorter.close()
    reducer.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, REDUCE_OUTPUT_RECORDS, len(output))
    return output, counters.as_dict()


def _run_spec(spec: Any) -> Any:
    """Dispatch one spec to its executor (shared by serial and workers)."""
    if isinstance(spec, _MapTaskSpec):
        return _execute_map_task(spec)
    return _execute_reduce_task(spec)


def _run_pickled_spec(payload: bytes) -> Any:
    """Worker entry point: specs arrive pre-pickled by the driver.

    The driver pickles specs itself (instead of letting the executor do
    it) so :class:`EngineStats` can meter exactly what crossed the process
    boundary at zero extra cost.
    """
    return _run_spec(pickle.loads(payload))


@dataclass
class EngineStats:
    """Driver-side dispatch metrics for a :class:`MultiprocessEngine`.

    Kept out of job counters on purpose: job results stay bit-identical
    between engines while the perf harness still gets exact byte
    accounting.  ``broadcast_loads`` counts one-shot job localizations
    (at most one per worker per job); ``worker_pids`` the distinct workers
    that executed tasks.

    The fault-tolerance metrics meter the driver's recovery work:
    ``pool_restarts`` (worker pool respawned after a dead worker or hang
    kill), ``tasks_relaunched`` (task dispatches re-issued after a pool
    restart), ``tasks_timed_out`` (hung attempts the driver killed —
    post-hoc attempt timeouts are job counters instead),
    ``speculative_launched``/``speculative_wasted`` (backup attempts
    started / attempts whose output lost the race and was discarded).
    """

    pools_created: int = 0
    jobs_broadcast: int = 0
    broadcast_bytes: int = 0
    spec_bytes: int = 0
    tasks_dispatched: int = 0
    broadcast_loads: int = 0
    worker_pids: set = field(default_factory=set)
    pool_restarts: int = 0
    tasks_relaunched: int = 0
    tasks_timed_out: int = 0
    speculative_launched: int = 0
    speculative_wasted: int = 0

    @property
    def bytes_pickled(self) -> int:
        """Everything the driver pickled to dispatch work (broadcast + specs)."""
        return self.broadcast_bytes + self.spec_bytes


class Engine:
    """Shared orchestration: split planning, shuffle accounting, result."""

    #: pooled engines pre-encode shuffle chunks worker-side
    _encode_shuffle = False

    def run(
        self,
        job: Job,
        input_records: Sequence[KeyValue] | None = None,
        *,
        splits: list[Split] | None = None,
        num_map_tasks: int | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``input_records`` (or pre-built ``splits``).

        ``num_map_tasks`` controls split planning when raw records are
        given; when omitted, one split is planned per
        ``job.config["records_per_split"]`` records (default
        :data:`DEFAULT_RECORDS_PER_SPLIT`), at least one.  An explicit
        ``num_map_tasks`` always overrides the per-split size.
        """
        if (input_records is None) == (splits is None):
            raise ValueError("provide exactly one of input_records or splits")
        if splits is None:
            assert input_records is not None
            if num_map_tasks is None:
                per_split = int(
                    job.config.get("records_per_split", DEFAULT_RECORDS_PER_SPLIT)
                )
                if per_split < 1:
                    raise ValueError(
                        f"records_per_split must be >= 1, got {per_split}"
                    )
                num_map_tasks = max(1, len(input_records) // per_split)
            splits = split_by_count(input_records, num_map_tasks)

        num_partitions = job.num_reducers if job.reducer is not None else 0
        handle = self._job_handle(job)
        try:
            return self._run_phases(job, handle, splits, num_partitions)
        finally:
            self._release_job(handle)

    def _run_phases(
        self, job: Job, handle: Any, splits: list[Split], num_partitions: int
    ) -> JobResult:
        encode = self._encode_shuffle and num_partitions > 0
        map_specs = [
            _MapTaskSpec(
                job=handle,
                records=split.records,
                num_partitions=num_partitions,
                encode=encode,
                task_index=index,
            )
            for index, split in enumerate(splits)
        ]
        map_outputs = self._run_tasks(map_specs, job)

        counters = Counters()
        slots = max(1, num_partitions)
        # Per-partition gather across map tasks.  With encoding on, each
        # entry is a list of opaque chunks the driver never decodes.
        gathered: list[list] = [[] for _ in range(slots)]
        part_records = [0] * slots
        part_bytes = [0] * slots
        for (partitions, counts, sizes), counter_dict, info in map_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            self._note_worker(info)
            for index, part in enumerate(partitions):
                if encode:
                    if counts[index]:
                        gathered[index].append(part)
                else:
                    gathered[index].extend(part)
                part_records[index] += counts[index]
                part_bytes[index] += sizes[index]

        if job.reducer is None:
            records = [record for part in gathered for record in part]
            return JobResult(
                records=records,
                counters=counters,
                num_map_tasks=len(splits),
                num_reduce_tasks=0,
            )

        # Shuffle volume comes from the map-reported per-partition sums —
        # the records were measured exactly once, task-side.
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_RECORDS, sum(part_records))
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_BYTES, sum(part_bytes))

        reduce_specs = [
            _ReduceTaskSpec(
                job=handle,
                records=None if encode else gathered[index],
                chunks=gathered[index] if encode else None,
                partition_bytes=part_bytes[index],
                task_index=index,
            )
            for index in range(num_partitions)
        ]
        reduce_outputs = self._run_tasks(reduce_specs, job)
        records = []
        for output, counter_dict, info in reduce_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            self._note_worker(info)
            records.extend(output)
        return JobResult(
            records=records,
            counters=counters,
            num_map_tasks=len(splits),
            num_reduce_tasks=num_partitions,
        )

    @staticmethod
    def auto(
        workload_hint: int | None = None,
        *,
        max_workers: int | None = None,
        serial_below: int = AUTO_SERIAL_MAX_RECORDS,
    ) -> "Engine":
        """Pick an engine from a workload-size hint (records through the run).

        ``workload_hint`` is the caller's estimate of how many records the
        job will push through map+shuffle (e.g. a scheme's
        ``metrics().communication_records``, or ``len(input_records)`` for
        plain jobs).  Below ``serial_below`` (default
        :data:`AUTO_SERIAL_MAX_RECORDS`, from the engine-scaling
        benchmark's measured crossover) a :class:`SerialEngine` is
        returned — at small scale pool startup and job broadcasts dominate
        and serial wins; at or above it, a :class:`MultiprocessEngine`
        with ``max_workers``.  ``None`` (unknown workload) conservatively
        picks serial.
        """
        if workload_hint is not None and workload_hint < 0:
            raise ValueError(f"workload_hint must be >= 0, got {workload_hint}")
        if workload_hint is None or workload_hint < serial_below:
            return SerialEngine()
        return MultiprocessEngine(max_workers=max_workers)

    def close(self) -> None:
        """Release engine resources (noop for in-process engines)."""

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- engine-specific hooks -------------------------------------------------
    def _job_handle(self, job: Job) -> Any:
        """How task specs reference the job (the job itself by default)."""
        return job

    def _release_job(self, handle: Any) -> None:
        """Called once the job's phases are done (noop by default)."""

    def _note_worker(self, info: dict) -> None:
        """Fold one task's worker info into engine stats (noop by default)."""

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        raise NotImplementedError


class SerialEngine(Engine):
    """Run every task in-process, one after another (deterministic).

    Fault-tolerance semantics are the worker-side subset: injected
    crashes/poisons/slow-tasks, retry backoff and the post-hoc attempt
    timeout all apply; worker-kill faults degrade to ordinary task
    failures and hung attempts cannot be preempted (there is no second
    process to kill them from).
    """

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        return [_run_spec(spec) for spec in specs]


def _dispose(resources: dict) -> None:
    """Shut down a pooled engine's externals (idempotent; GC-safe)."""
    pool = resources.pop("pool", None)
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
    tmpdir = resources.pop("tmpdir", None)
    if tmpdir is not None:
        tmpdir.cleanup()


class MultiprocessEngine(Engine):
    """Fan tasks out over a persistent process pool.

    The pool is created lazily on the first task batch and then reused for
    every later phase and job until :meth:`close` (or garbage collection)
    shuts it down — chained pipeline jobs pay process start-up exactly
    once.  Each job's static parts are broadcast once (see module
    docstring); :attr:`stats` accumulates dispatch metrics across runs.

    ``max_workers=None`` uses the executor default (CPU count).  Everything
    attached to the job must be picklable; task outputs come back in task
    order so results match :class:`SerialEngine` exactly.  Usable as a
    context manager::

        with MultiprocessEngine(max_workers=4) as engine:
            Pipeline([job1, job2], engine=engine).run(records)
    """

    _encode_shuffle = True

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.stats = EngineStats()
        self._job_seq = 0
        self._resources: dict = {}
        self._finalizer = weakref.finalize(self, _dispose, self._resources)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and remove broadcast files (engine reusable)."""
        _dispose(self._resources)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        pool = self._resources.get("pool")
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=_worker_init
            )
            self._resources["pool"] = pool
            self.stats.pools_created += 1
        return pool

    def _broadcast_dir(self) -> Path:
        tmpdir = self._resources.get("tmpdir")
        if tmpdir is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-engine-")
            self._resources["tmpdir"] = tmpdir
        return Path(tmpdir.name)

    # -- engine hooks ----------------------------------------------------------
    def _job_handle(self, job: Job) -> _JobRef:
        """Broadcast the job's static parts once; tasks carry a tiny ref."""
        self._job_seq += 1
        uid = f"job-{self._job_seq}"
        path = self._broadcast_dir() / f"{uid}.pkl"
        data = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(data)
        self.stats.jobs_broadcast += 1
        self.stats.broadcast_bytes += len(data)
        return _JobRef(uid=uid, path=str(path))

    def _release_job(self, handle: Any) -> None:
        if isinstance(handle, _JobRef):
            base = Path(handle.path)
            base.unlink(missing_ok=True)
            for marker in base.parent.glob(f"{base.stem}.*.began"):
                marker.unlink(missing_ok=True)

    def _note_worker(self, info: dict) -> None:
        self.stats.worker_pids.add(info["pid"])
        if info["loaded"]:
            self.stats.broadcast_loads += 1

    def _teardown_pool(self, *, kill: bool = False) -> None:
        """Drop the current pool; ``kill`` terminates workers first.

        Killing is how hung tasks are cancelled: a worker stuck in task
        code never returns on its own, so the driver terminates the
        processes and lets the next :meth:`_ensure_pool` respawn a fresh
        pool (new workers re-localize broadcasts lazily from disk).
        """
        pool = self._resources.pop("pool", None)
        if pool is None:
            return
        if kill:
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        """Dispatch one phase's tasks with recovery and speculation.

        A future-per-dispatch loop replaces ``pool.map`` so the driver can
        (a) respawn a broken pool and re-run only the lost in-flight
        tasks, (b) kill attempts that hang past the task timeout, and
        (c) launch speculative backup attempts for end-of-phase
        stragglers.  Results are keyed by task index, so output order —
        and therefore job results — is identical to :class:`SerialEngine`
        no matter which attempt of a task wins.
        """
        if not specs:
            return []
        kind = "map" if isinstance(specs[0], _MapTaskSpec) else "reduce"
        timeout = job.config.get("task_timeout_seconds")
        limit = float(timeout) if timeout is not None else None
        speculate = bool(job.config.get("speculative_execution", False))
        multiplier = float(job.config.get("speculative_multiplier", 2.0))
        fraction = float(job.config.get("speculative_fraction", 0.25))

        total = len(specs)
        results: dict[int, Any] = {}
        next_attempt = {index: 1 for index in range(total)}
        durations: list[float] = []
        inflight: dict[Future, int] = {}
        launched_at: dict[Future, float] = {}
        started_at: dict[Future, float] = {}
        budget: dict[Future, float] = {}
        errors: dict[int, BaseException] = {}

        def active_attempts(index: int) -> int:
            return sum(1 for i in inflight.values() if i == index)

        def dispatch(index: int, *, speculative: bool = False) -> None:
            spec = specs[index]
            spec.first_attempt = next_attempt[index]
            spec.speculative = speculative
            payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
            self.stats.spec_bytes += len(payload)
            self.stats.tasks_dispatched += 1
            future = self._ensure_pool().submit(_run_pickled_spec, payload)
            inflight[future] = index
            launched_at[future] = time.monotonic()
            if limit is not None:
                # A started attempt may legitimately consume the whole
                # remaining retry budget worker-side (each local retry gets
                # its own post-hoc window) before the driver declares it
                # hung; the slack absorbs dispatch/pickling overhead.
                remaining = job.max_attempts - next_attempt[index] + 1
                budget[future] = limit * remaining + max(1.0, limit)

        def resolve(index: int, future: Future, output: Any, now: float) -> None:
            results[index] = output
            errors.pop(index, None)
            durations.append(now - started_at.get(future, launched_at[future]))
            # Any sibling attempt still out is wasted speculative work:
            # cancel it if it never started, discard its output otherwise.
            for other, other_index in list(inflight.items()):
                if other_index == index:
                    self.stats.speculative_wasted += 1
                    if other.cancel():
                        inflight.pop(other, None)

        def restart_pool() -> None:
            """Respawn the pool; re-dispatch and charge unfinished tasks.

            A task is charged one lost attempt iff its current attempt's
            began-marker exists — i.e. a worker actually started it before
            the pool died.  Queued tasks re-dispatch on the same attempt
            number, so their attempt-pinned faults and retry budget are
            untouched.
            """
            self.stats.pool_restarts += 1
            charged: set[int] = set()
            for index in range(total):
                if index in results or index in charged:
                    continue
                handle = specs[index].job
                if isinstance(handle, _JobRef) and _marker_path(
                    handle, kind, specs[index].task_index, next_attempt[index]
                ).exists():
                    charged.add(index)
            for index in charged:
                next_attempt[index] += 1
            inflight.clear()
            launched_at.clear()
            started_at.clear()
            budget.clear()
            self._teardown_pool(kill=True)
            for index in range(total):
                if index in results:
                    continue
                if next_attempt[index] > job.max_attempts:
                    lost = TaskLostError(
                        kind, specs[index].task_index, next_attempt[index] - 1
                    )
                    raise TaskFailedError(
                        kind, job.max_attempts, lost, causes=[lost]
                    )
                self.stats.tasks_relaunched += 1
                dispatch(index)

        for index in range(total):
            dispatch(index)

        while len(results) < total:
            if not inflight:  # pragma: no cover - defensive
                raise RuntimeError("engine dispatch lost track of in-flight tasks")
            done, _ = wait(
                list(inflight), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for future in list(inflight):
                if future not in started_at and future.running():
                    started_at[future] = now
            broken = False
            try:
                for future in done:
                    index = inflight.pop(future, None)
                    if index is None or index in results or future.cancelled():
                        continue  # late loser of an already-resolved task
                    exc = future.exception()
                    if exc is None:
                        resolve(index, future, future.result(), now)
                        continue
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                        continue
                    errors[index] = exc
                    if active_attempts(index) == 0:
                        # No backup attempt can save this task: fail the
                        # job like the serial engine would.
                        for straggler in inflight:
                            straggler.cancel()
                        raise exc

                if not broken and limit is not None:
                    hung = {
                        inflight[future]
                        for future, begun in started_at.items()
                        if future in inflight
                        and inflight[future] not in results
                        and now - begun > budget[future]
                    }
                    if hung:
                        self.stats.tasks_timed_out += len(hung)
                        restart_pool()
                        continue

                if not broken and speculate and durations:
                    remaining = total - len(results)
                    if remaining <= max(1, math.ceil(fraction * total)):
                        threshold = multiplier * statistics.median(durations)
                        for future, index in list(inflight.items()):
                            if index in results or active_attempts(index) > 1:
                                continue
                            begun = started_at.get(future)
                            if begun is not None and now - begun > threshold:
                                self.stats.speculative_launched += 1
                                dispatch(index, speculative=True)
            except BrokenProcessPool:
                broken = True
            if broken:
                restart_pool()

        return [results[index] for index in range(total)]
