"""Execution engines: run a :class:`~repro.mapreduce.job.Job` over splits.

Two engines share one code path per task:

- :class:`SerialEngine` — everything in-process, deterministic, the default
  for tests and validation;
- :class:`MultiprocessEngine` — map and reduce tasks fan out over a
  ``ProcessPoolExecutor``.  Mapper/reducer factories, cache payloads and
  records must be picklable; results are bit-identical to the serial
  engine (stable hashing + sorted shuffle make order deterministic).

Both meter the framework counters (records and bytes at every stage) that
the evaluation harness compares against the paper's Table-1 predictions.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from .job import Context, Job, JobResult, KeyValue, TaskFailedError
from .serialization import record_size
from .shuffle import partition_records, sort_and_group
from .splits import Split, split_by_count


@dataclass
class _MapTaskSpec:
    """Everything one map task needs, picklable for the process pool."""

    job: Job
    records: list[KeyValue]
    num_partitions: int


@dataclass
class _ReduceTaskSpec:
    """One reduce task: its partition of the shuffled records."""

    job: Job
    records: list[KeyValue]


def _execute_map_task(spec: _MapTaskSpec) -> tuple[list[list[KeyValue]], dict]:
    """Run one map task with retries; returns (partitions, counters).

    Module-level so the multiprocess engine can ship it to workers.
    """
    return _with_retries("map", spec.job, lambda: _map_attempt(spec))


def _map_attempt(spec: _MapTaskSpec) -> tuple[list[list[KeyValue]], dict]:
    """One attempt of a map task (fresh mapper + context)."""
    job = spec.job
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    mapper = job.mapper()
    mapper.setup(context)
    for key, value in spec.records:
        counters.increment(FRAMEWORK_GROUP, MAP_INPUT_RECORDS)
        mapper.map(key, value, context)
    mapper.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS, len(output))
    counters.increment(
        FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, sum(record_size(k, v) for k, v in output)
    )

    if job.combiner is not None:
        counters.increment(FRAMEWORK_GROUP, COMBINE_INPUT_RECORDS, len(output))
        combiner = job.combiner()
        combine_context = Context(counters, cache=job.cache, config=job.config)
        combiner.setup(combine_context)
        for key, values in sort_and_group(output, job.sort_key):
            combiner.reduce(key, values, combine_context)
        combiner.cleanup(combine_context)
        output = combine_context.drain()
        counters.increment(FRAMEWORK_GROUP, COMBINE_OUTPUT_RECORDS, len(output))

    if spec.num_partitions == 0:  # map-only job: single pseudo-partition
        return [output], counters.as_dict()
    partitions = partition_records(output, spec.num_partitions, job.partitioner)
    return partitions, counters.as_dict()


def _execute_reduce_task(spec: _ReduceTaskSpec) -> tuple[list[KeyValue], dict]:
    """Run one reduce task (with retries) over its (unsorted) partition."""
    return _with_retries("reduce", spec.job, lambda: _reduce_attempt(spec))


def _with_retries(kind: str, job: Job, attempt: Callable[[], Any]) -> Any:
    """Hadoop's attempt loop: re-run a failed task up to job.max_attempts.

    Each retry gets a completely fresh attempt (new task object, new
    context, new counters), so partial effects of a failed attempt never
    leak — the engine only ever keeps a *successful* attempt's output.
    Retries are recorded in the winning attempt's counters.
    """
    last_error: BaseException | None = None
    for attempt_number in range(1, job.max_attempts + 1):
        try:
            result, counters = attempt()
        except Exception as exc:  # noqa: BLE001 - task code may raise anything
            last_error = exc
            continue
        if attempt_number > 1:
            counters.setdefault(FRAMEWORK_GROUP, {})
            counters[FRAMEWORK_GROUP]["task_retries"] = (
                counters[FRAMEWORK_GROUP].get("task_retries", 0) + attempt_number - 1
            )
        return result, counters
    assert last_error is not None
    raise TaskFailedError(kind, job.max_attempts, last_error)


def _reduce_attempt(spec: _ReduceTaskSpec) -> tuple[list[KeyValue], dict]:
    """One attempt of a reduce task."""
    job = spec.job
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    assert job.reducer is not None  # guarded by Job validation
    reducer = job.reducer()
    reducer.setup(context)
    counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_RECORDS, len(spec.records))
    for key, values in sort_and_group(spec.records, job.sort_key):
        counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_GROUPS)
        if job.value_sort_key is not None:
            values = iter(sorted(values, key=job.value_sort_key))
        reducer.reduce(key, values, context)
    reducer.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, REDUCE_OUTPUT_RECORDS, len(output))
    return output, counters.as_dict()


class Engine:
    """Shared orchestration: split planning, shuffle accounting, result."""

    def run(
        self,
        job: Job,
        input_records: Sequence[KeyValue] | None = None,
        *,
        splits: list[Split] | None = None,
        num_map_tasks: int | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``input_records`` (or pre-built ``splits``).

        ``num_map_tasks`` controls split planning when raw records are
        given (default: one split per 5000 records, at least one).
        """
        if (input_records is None) == (splits is None):
            raise ValueError("provide exactly one of input_records or splits")
        if splits is None:
            assert input_records is not None
            if num_map_tasks is None:
                num_map_tasks = max(1, len(input_records) // 5000)
            splits = split_by_count(input_records, num_map_tasks)

        num_partitions = job.num_reducers if job.reducer is not None else 0
        map_specs = [
            _MapTaskSpec(job=job, records=split.records, num_partitions=num_partitions)
            for split in splits
        ]
        map_outputs = self._run_tasks(_execute_map_task, map_specs)

        counters = Counters()
        # Per-partition gather across map tasks.
        gathered: list[list[KeyValue]] = [[] for _ in range(max(1, num_partitions))]
        for partitions, counter_dict in map_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            for index, part in enumerate(partitions):
                gathered[index].extend(part)

        if job.reducer is None:
            records = [record for part in gathered for record in part]
            return JobResult(
                records=records,
                counters=counters,
                num_map_tasks=len(splits),
                num_reduce_tasks=0,
            )

        shuffle_records = sum(len(part) for part in gathered)
        shuffle_bytes = sum(
            record_size(k, v) for part in gathered for k, v in part
        )
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_RECORDS, shuffle_records)
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_BYTES, shuffle_bytes)

        reduce_specs = [_ReduceTaskSpec(job=job, records=part) for part in gathered]
        reduce_outputs = self._run_tasks(_execute_reduce_task, reduce_specs)
        records = []
        for output, counter_dict in reduce_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            records.extend(output)
        return JobResult(
            records=records,
            counters=counters,
            num_map_tasks=len(splits),
            num_reduce_tasks=num_partitions,
        )

    # -- engine-specific task execution ---------------------------------------
    def _run_tasks(self, fn: Callable[[Any], Any], specs: list[Any]) -> list[Any]:
        raise NotImplementedError


class SerialEngine(Engine):
    """Run every task in-process, one after another (deterministic)."""

    def _run_tasks(self, fn: Callable[[Any], Any], specs: list[Any]) -> list[Any]:
        return [fn(spec) for spec in specs]


class MultiprocessEngine(Engine):
    """Fan tasks out over a process pool.

    ``max_workers=None`` uses the executor default (CPU count).  Everything
    attached to the job must be picklable; task outputs come back in task
    order so results match :class:`SerialEngine` exactly.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def _run_tasks(self, fn: Callable[[Any], Any], specs: list[Any]) -> list[Any]:
        if len(specs) <= 1:  # no point paying process start-up for one task
            return [fn(spec) for spec in specs]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, specs))
