"""Execution engines: run a :class:`~repro.mapreduce.job.Job` over splits.

Two engines share one code path per task:

- :class:`SerialEngine` — everything in-process, deterministic, the default
  for tests and validation;
- :class:`MultiprocessEngine` — map and reduce tasks fan out over a
  **persistent** ``ProcessPoolExecutor`` that lives across map/reduce
  phases and across the chained jobs of a pipeline.  Mapper/reducer
  factories, cache payloads and records must be picklable; results are
  bit-identical to the serial engine (stable hashing + sorted shuffle make
  order deterministic).

The multiprocess engine is built around two ideas from the paper's cost
model (replication rate × communication cost is the governing tradeoff):

**One-shot job broadcast.**  A job's static parts — mapper/reducer
factories, config, and the distributed cache holding the dataset — are
pickled *once per job* to a broadcast file; each pool worker loads and
caches it on first touch (once per worker, like Hadoop's DistributedCache
localization).  Task specs shrink to just their record slices instead of
carrying a full copy of the job, so a b-task run no longer ships the cache
b times.  :attr:`MultiprocessEngine.stats` meters what the driver actually
pickled.

**Direct (driver-bypass) shuffle.**  By default
(``shuffle_mode="direct"``) map tasks write each partition as a spill
file — one NPB1-framed chunk per (task, partition) under the job's
scratch dir — and return only a *manifest* (paths + record/byte counts);
reduce tasks open their partition's spill files directly and stream the
records through the sort (external merge via
:mod:`repro.mapreduce.extsort` past the spill threshold).  The driver
orchestrates but never touches record payloads: what crosses it shrinks
from the full shuffle volume to manifest-size
(:attr:`EngineStats.driver_bytes`).  Spill files are attempt-scoped
(named by task, dispatch attempt, and speculative flag) and published by
atomic rename, so retries, speculative attempts and worker crashes can
never corrupt or collide a file — losers just leave orphans that are
removed with the job.  The legacy ``shuffle_mode="relay"`` keeps the
PR-1 path: map tasks return pre-encoded chunks, the driver gathers them
opaquely and forwards them to reduce tasks.  Both modes meter
``SHUFFLE_BYTES`` from the map-reported sums and produce bit-identical
job results.

**Fused job chaining.**  :meth:`Engine.run_chain` runs a job chain; on
the pooled engine in direct mode, adjacent stages are *fused* when the
next job's map phase is identity-shaped (default mapper, no combiner):
the upstream reduce tasks partition their output at source with the next
job's partitioner and write its spill files directly, so the next stage
starts from disk without a driver-side materialize + re-ingest.  The
elided identity map phase's data-plane counters are synthesized from the
manifest sums (bit-identical to the unfused values); the fused stage's
:class:`~repro.mapreduce.job.JobResult` carries no records
(``records_elided=True``).  Opt out per job with
``config["pipeline_fusion"]=False``.

Both engines meter the framework counters (records and bytes at every
stage) that the evaluation harness compares against the paper's Table-1
predictions.  Engine-level dispatch metrics (bytes pickled, broadcast
loads) are deliberately kept *out* of job counters so serial and pooled
runs stay bit-identical.

**Fault tolerance.**  Task execution mirrors Hadoop 0.20's fault model
(the paper's premise that commodity-cluster failures are survivable):

- every attempt runs under an optional per-task wall-clock budget
  (``config["task_timeout_seconds"]``) — an over-budget attempt fails and
  retries; on the pooled engine a *hung* attempt is killed with its
  worker pool and the lost tasks re-dispatched;
- retries back off exponentially with deterministic jitter
  (``config["retry_backoff_seconds"]``);
- a dead worker process (``BrokenProcessPool``) is recovered
  transparently: the pool is respawned, new workers re-localize the job
  broadcast lazily from the (still on disk) broadcast file, and only the
  tasks that were in flight are re-run — each charged one attempt;
- near the end of a task batch, stragglers get Hadoop-style speculative
  backup attempts (``config["speculative_execution"]``); the first
  finisher wins and the loser's output is discarded, so results stay
  bit-identical to :class:`SerialEngine`;
- deterministic fault injection (``config["fault_plan"]``, a
  :class:`~repro.mapreduce.faults.FaultPlan`) makes all of the above
  reproducibly testable.

Attempt numbering is global: attempts lost driver-side (dead worker,
hang kill) advance the same 1-based counter the worker-side retry loop
uses, so ``max_attempts`` bounds the *total* effort per task and
attempt-pinned injected faults never re-fire on re-dispatch.
"""

from __future__ import annotations

import math
import os
import pickle
import shutil
import statistics
import tempfile
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from .faults import FaultPlan, PoisonedRecordError, _draw

from .counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from .extsort import ExternalSorter, sorted_groups
from .job import (
    Context,
    Job,
    JobResult,
    KeyValue,
    Mapper,
    TaskFailedError,
    TaskLostError,
    TaskTimeoutError,
)
from .serialization import (
    decode_records,
    encode_records,
    record_size,
    write_chunk_file,
)
from .shuffle import iter_spill_records, partition_with_sizes, sort_and_group
from .splits import Split, split_by_count

#: Default records per map split when neither ``num_map_tasks`` nor the
#: job's ``config["records_per_split"]`` is given.  ``num_map_tasks``
#: always wins over the per-split size: when the caller fixes the task
#: count, records are carved into exactly that many near-equal splits and
#: this constant is ignored.
DEFAULT_RECORDS_PER_SPLIT = 5000

#: Reduce partitions whose accounted byte size (per-partition sums
#: reported by map tasks) exceeds this threshold are sorted via the
#: external merge sort with the threshold as its memory budget, instead of
#: an in-memory ``sorted()``.  Override per job with
#: ``config["spill_threshold_bytes"]``.
DEFAULT_SPILL_THRESHOLD_BYTES = 64 * 1024 * 1024

#: Below this many records, :meth:`Engine.auto` picks :class:`SerialEngine`.
#: The engine-scaling benchmark (BENCH_engine_scaling.json) shows the
#: crossover empirically: at small scale (v=60 design-scheme docsim, a few
#: thousand shuffled records) the serial engine beats the pooled one —
#: pool startup plus per-job broadcasts cost more than the computation —
#: while large record volumes amortize the dispatch overhead.
AUTO_SERIAL_MAX_RECORDS = 20_000

#: Framework counters for the reduce-side spill path (deterministic across
#: engines: both decide from the same per-partition sums and threshold).
REDUCE_SPILLED_RECORDS = "reduce_spilled_records"
REDUCE_SPILL_RUNS = "reduce_spill_runs"

#: Framework counter: failed attempts absorbed by retries (equals
#: ``task_retries`` per winning task, but named so retry storms are
#: legible in :class:`~repro.mapreduce.job.JobResult` counters).  Lost
#: attempts (worker death, hang kill) are charged too — the winning
#: re-dispatch reports them, so a recovered worker crash is visible in
#: job counters even though no exception ever reached the retry loop.
TASK_FAILURES = "task_failures"
TASK_RETRIES = "task_retries"
#: Framework counter: total attempts used by winning tasks (1 per task on
#: a clean run; retries and lost attempts raise it).
TASK_ATTEMPTS = "task_attempts"
#: Framework counter: attempts that failed the post-hoc wall-clock check
#: (attempt finished but over ``task_timeout_seconds``).  Driver-side hang
#: kills are metered separately in :attr:`EngineStats.tasks_timed_out`.
TASKS_TIMED_OUT = "tasks_timed_out"

#: driver polling cadence for completion/hang/speculation checks
_POLL_SECONDS = 0.05

#: shuffle data planes a :class:`MultiprocessEngine` supports
SHUFFLE_MODES = ("direct", "relay")


@dataclass(frozen=True)
class _JobRef:
    """Driver-side handle to a broadcast job: workers load it lazily."""

    uid: str
    path: str


@dataclass
class _MapTaskSpec:
    """One map task: its record slice plus a handle to the shared job.

    ``job`` is either the :class:`Job` itself (serial engine) or a
    :class:`_JobRef` pointing at the engine's broadcast file (pooled
    engine) — the spec no longer carries the job's cache/config, which is
    what keeps per-task pickling proportional to the records alone.
    """

    job: Any
    records: list[KeyValue]
    num_partitions: int
    #: pre-encode partition chunks worker-side (pooled engine only)
    encode: bool = False
    #: direct shuffle: write encoded partitions as spill files under this
    #: directory and return a manifest instead of the chunks
    spill_dir: str | None = None
    #: position of this task within its phase (fault plans key on it)
    task_index: int = 0
    #: 1-based global attempt this dispatch starts at (> 1 after the
    #: driver lost earlier attempts to a dead/hung worker)
    first_attempt: int = 1
    #: True for a speculative backup dispatch of a straggling task
    speculative: bool = False


@dataclass(frozen=True)
class _NextStage:
    """Fused chaining: where a reduce task spills its output for job i+1.

    ``job`` is the *next* job's broadcast ref (the worker resolves it to
    get the partitioner — and localizes its cache as a side effect);
    ``num_partitions``/``spill_dir`` describe the next job's shuffle.
    """

    job: Any
    num_partitions: int
    spill_dir: str


@dataclass
class _ReduceTaskSpec:
    """One reduce task: its partition as records, chunks, or spill paths."""

    job: Any
    records: list[KeyValue] | None
    chunks: list[bytes] | None
    #: direct shuffle: this partition's spill files, in map-task order
    #: (order fixes the arrival-order tie-break — see iter_spill_records)
    spill_paths: list[str] | None = None
    #: map-reported record count of the partition (REDUCE_INPUT_RECORDS;
    #: with spill paths the records are never counted driver-side)
    num_records: int = 0
    #: accounted partition size (map-reported sums) driving the spill path
    partition_bytes: int = 0
    task_index: int = 0
    first_attempt: int = 1
    speculative: bool = False
    #: when set, partition + spill this task's output for the next job
    #: (the fused reduce→map short-circuit) instead of returning records
    next_stage: _NextStage | None = None


@dataclass
class _FusedOutput:
    """What a fused reduce task returns: the next job's shuffle manifest."""

    #: per-partition ``(path, file_bytes)`` entry, or None when empty
    entries: list[tuple[str, int] | None]
    #: per-partition record counts of this task's contribution
    counts: list[int]
    #: per-partition accounted byte sums (record_size, not file bytes)
    sizes: list[int]
    #: total records this reduce task emitted (the elided map's input)
    num_records: int


def _spill_file(
    spill_dir: str,
    kind: str,
    task_index: int,
    attempt: int,
    speculative: bool,
    partition: int,
) -> str:
    """Attempt-scoped spill file name for one (task, partition) chunk.

    The dispatch identity — task index, the dispatch's first attempt
    number, and the speculative flag — is baked into the name, so a
    re-dispatch after a lost worker or a speculative backup can never
    collide with an earlier attempt's file.  (Within one dispatch the
    worker writes only after its attempt loop succeeds, exactly once.)
    """
    tag = f"a{attempt}s" if speculative else f"a{attempt}"
    return os.path.join(
        spill_dir, f"{kind}-{task_index:05d}-{tag}-p{partition:05d}.spill"
    )


# -- worker-side job registry -------------------------------------------------
#: jobs this worker has loaded from broadcast files, keyed by _JobRef.uid
_WORKER_JOBS: dict[str, Job] = {}
_WORKER_JOB_CAP = 8

#: True inside pool worker processes (set by the initializer).  Injected
#: worker-kill faults only take the process down when this is set; the
#: serial engine degrades them to ordinary task failures.
_IS_POOL_WORKER = False


def _worker_init() -> None:
    """Pool initializer: start every worker with an empty job registry.

    With the ``fork`` start method workers would otherwise inherit
    whatever the driver process had resident; clearing keeps the
    load-once-per-worker accounting honest.
    """
    global _IS_POOL_WORKER
    _IS_POOL_WORKER = True
    _WORKER_JOBS.clear()


def _resolve_job(handle: Any) -> tuple[Job, dict]:
    """Turn a spec's job handle into the actual Job (loading at most once).

    Returns ``(job, info)`` where ``info`` records the executing pid and
    whether this call localized the broadcast (i.e. the one-shot cache
    broadcast happened here).  The driver folds ``info`` into
    :class:`EngineStats`, never into job counters.
    """
    if isinstance(handle, Job):
        return handle, {"pid": os.getpid(), "loaded": False}
    job = _WORKER_JOBS.get(handle.uid)
    if job is not None:
        return job, {"pid": os.getpid(), "loaded": False}
    with open(handle.path, "rb") as fh:
        job = pickle.load(fh)
    _WORKER_JOBS[handle.uid] = job
    while len(_WORKER_JOBS) > _WORKER_JOB_CAP:
        _WORKER_JOBS.pop(next(iter(_WORKER_JOBS)))
    return job, {"pid": os.getpid(), "loaded": True}


def _marker_path(handle: _JobRef, kind: str, task_index: int, attempt: int) -> Path:
    """Attempt-began marker: proves to the driver an attempt ran at all.

    Workers touch it at the start of every attempt (same directory as the
    job broadcast).  When the pool dies, the driver charges a lost attempt
    only to tasks whose current attempt's marker exists — queued tasks
    that never started are re-dispatched free, exactly like Hadoop
    re-queues (rather than fails) tasks from a lost TaskTracker.
    """
    base = Path(handle.path)
    return base.parent / f"{base.stem}.{kind}.{task_index}.{attempt}.began"


def _attempt_marker(handle: Any, kind: str, task_index: int):
    """Worker-side marker writer for pooled specs (None for in-process)."""
    if not isinstance(handle, _JobRef):
        return None

    def mark(attempt: int) -> None:
        try:
            _marker_path(handle, kind, task_index, attempt).touch()
        except OSError:  # pragma: no cover - marker loss only skews charging
            pass

    return mark


def _spill_partitions(
    partitions: list[list[KeyValue]],
    counts: list[int],
    spill_dir: str,
    kind: str,
    task_index: int,
    attempt: int,
    speculative: bool,
) -> list[tuple[str, int] | None]:
    """Encode and spill one task's partitions; return the manifest entries.

    Empty partitions get no file (``None`` entry).  Runs worker-side
    *after* the attempt loop succeeded, so a failed attempt never writes;
    the atomic publish in :func:`write_chunk_file` covers mid-write kills.
    """
    entries: list[tuple[str, int] | None] = []
    for partition, part in enumerate(partitions):
        if counts[partition]:
            chunk = encode_records(part)
            path = _spill_file(
                spill_dir, kind, task_index, attempt, speculative, partition
            )
            write_chunk_file(path, chunk)
            entries.append((path, len(chunk)))
        else:
            entries.append(None)
    return entries


def _execute_map_task(spec: _MapTaskSpec) -> tuple[tuple, dict, dict]:
    """Run one map task with retries.

    Returns ``((partitions, partition_records, partition_bytes),
    counters, info)`` where ``partitions`` holds manifest entries when
    ``spec.spill_dir`` is set (direct shuffle), encoded chunks when only
    ``spec.encode`` is set (relay), raw record lists otherwise.
    """
    job, info = _resolve_job(spec.job)
    (partitions, counts, sizes), counters = _with_retries(
        "map",
        job,
        lambda attempt: _map_attempt(job, spec, attempt),
        task_index=spec.task_index,
        first_attempt=spec.first_attempt,
        speculative=spec.speculative,
        marker=_attempt_marker(spec.job, "map", spec.task_index),
    )
    if spec.spill_dir is not None:
        partitions = _spill_partitions(
            partitions,
            counts,
            spec.spill_dir,
            "map",
            spec.task_index,
            spec.first_attempt,
            spec.speculative,
        )
    elif spec.encode:
        partitions = [encode_records(part) for part in partitions]
    return (partitions, counts, sizes), counters, info


def _map_attempt(job: Job, spec: _MapTaskSpec, attempt: int) -> tuple[tuple, dict]:
    """One attempt of a map task (fresh mapper + context)."""
    plan: FaultPlan | None = job.config.get("fault_plan")
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    mapper = job.mapper()
    mapper.setup(context)
    for ordinal, (key, value) in enumerate(spec.records):
        if plan is not None and plan.poisons(
            "map", spec.task_index, attempt, ordinal, speculative=spec.speculative
        ):
            raise PoisonedRecordError(
                f"poisoned record {ordinal} in map task {spec.task_index} "
                f"(attempt {attempt})"
            )
        counters.increment(FRAMEWORK_GROUP, MAP_INPUT_RECORDS)
        mapper.map(key, value, context)
    mapper.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS, len(output))

    if job.combiner is not None:
        # Combined output differs from raw map output, so the raw bytes
        # must be measured before combining; the partition pass below
        # re-measures the (smaller) combined records for shuffle volume.
        counters.increment(
            FRAMEWORK_GROUP,
            MAP_OUTPUT_BYTES,
            sum(record_size(k, v) for k, v in output),
        )
        counters.increment(FRAMEWORK_GROUP, COMBINE_INPUT_RECORDS, len(output))
        combiner = job.combiner()
        combine_context = Context(counters, cache=job.cache, config=job.config)
        combiner.setup(combine_context)
        for key, values in sort_and_group(output, job.sort_key):
            combiner.reduce(key, values, combine_context)
        combiner.cleanup(combine_context)
        output = combine_context.drain()
        counters.increment(FRAMEWORK_GROUP, COMBINE_OUTPUT_RECORDS, len(output))

    if spec.num_partitions == 0:  # map-only job: single pseudo-partition
        total = sum(record_size(k, v) for k, v in output)
        if job.combiner is None:
            counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, total)
        return ([output], [len(output)], [total]), counters.as_dict()

    partitions, sizes = partition_with_sizes(
        output, spec.num_partitions, job.partitioner
    )
    if job.combiner is None:
        # Without a combiner the partitioned records *are* the map output;
        # one record_size pass serves both counters.
        counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, sum(sizes))
    counts = [len(part) for part in partitions]
    return (partitions, counts, sizes), counters.as_dict()


def _execute_reduce_task(spec: _ReduceTaskSpec) -> tuple[Any, dict, dict]:
    """Run one reduce task (with retries) over its (unsorted) partition.

    Input comes from spill files (direct shuffle), driver-relayed chunks,
    or raw records (serial).  The spill-file stream is rebuilt from disk
    for every attempt, so an attempt that died mid-merge retries against
    a fresh, complete read of its input.  With ``spec.next_stage`` set
    (fused chaining) the winning attempt's output is partitioned for the
    next job and spilled at source; a :class:`_FusedOutput` manifest is
    returned instead of the records.
    """
    job, info = _resolve_job(spec.job)
    if spec.spill_paths is not None:
        paths = spec.spill_paths

        def load() -> Iterable[KeyValue]:
            return iter_spill_records(paths)

    else:
        records = (
            [record for chunk in spec.chunks for record in decode_records(chunk)]
            if spec.chunks is not None
            else spec.records or []
        )

        def load() -> Iterable[KeyValue]:
            return records

    output, counters = _with_retries(
        "reduce",
        job,
        lambda attempt: _reduce_attempt(
            job, load(), spec.num_records, spec.partition_bytes
        ),
        task_index=spec.task_index,
        first_attempt=spec.first_attempt,
        speculative=spec.speculative,
        marker=_attempt_marker(spec.job, "reduce", spec.task_index),
    )
    if spec.next_stage is not None:
        stage = spec.next_stage
        next_job, next_info = _resolve_job(stage.job)
        partitions, sizes = partition_with_sizes(
            output, stage.num_partitions, next_job.partitioner
        )
        counts = [len(part) for part in partitions]
        entries = _spill_partitions(
            partitions,
            counts,
            stage.spill_dir,
            "fuse",
            spec.task_index,
            spec.first_attempt,
            spec.speculative,
        )
        if next_info["loaded"]:
            info = {**info, "extra_loads": info.get("extra_loads", 0) + 1}
        output = _FusedOutput(
            entries=entries, counts=counts, sizes=sizes, num_records=len(output)
        )
    return output, counters, info


def _backoff_seconds(base: float, kind: str, task_index: int, attempt: int) -> float:
    """Exponential backoff with deterministic full jitter before ``attempt``.

    The window doubles per retry (attempt 2 waits ~``base``, attempt 3
    ~``2·base``, ...); the actual delay is a uniform draw from the upper
    half of the window, keyed by task identity so reruns sleep the same.
    """
    window = base * (2 ** max(0, attempt - 2))
    return window * (0.5 + 0.5 * _draw(0, kind, task_index, f"backoff{attempt}"))


def _with_retries(
    kind: str,
    job: Job,
    attempt_fn: Callable[[int], Any],
    *,
    task_index: int = 0,
    first_attempt: int = 1,
    speculative: bool = False,
    marker: Callable[[int], None] | None = None,
) -> Any:
    """Hadoop's attempt loop: re-run a failed task up to job.max_attempts.

    Each retry gets a completely fresh attempt (new task object, new
    context, new counters), so partial effects of a failed attempt never
    leak — the engine only ever keeps a *successful* attempt's output.
    Every failed attempt's exception is chained to the previous one via
    ``__cause__`` (the full retry history survives in the traceback) and
    counted: the winning attempt's counters carry ``task_retries``,
    ``task_failures`` and ``task_attempts`` so retry storms show up in job
    results — including attempts lost *before* this loop ran
    (``first_attempt > 1`` means the driver already lost that many to dead
    workers, and they are charged here on success).

    Per attempt, in order: optional injected faults fire
    (``config["fault_plan"]``), the attempt runs under the post-hoc
    wall-clock check (``config["task_timeout_seconds"]``), and failures
    sleep an exponentially growing, deterministically jittered backoff
    (``config["retry_backoff_seconds"]``) before the next attempt.
    """
    plan: FaultPlan | None = job.config.get("fault_plan")
    timeout = job.config.get("task_timeout_seconds")
    limit = float(timeout) if timeout is not None else None
    backoff = float(job.config.get("retry_backoff_seconds", 0.0))
    failures: list[BaseException] = []
    timeouts = 0
    attempt = first_attempt
    while attempt <= job.max_attempts:
        if failures and backoff > 0:
            time.sleep(_backoff_seconds(backoff, kind, task_index, attempt))
        try:
            if marker is not None:
                marker(attempt)
            # The clock starts before injected faults so a SlowFault delay
            # counts as attempt time — injected stragglers trip the same
            # timeout a genuinely slow attempt would.
            started = time.monotonic()
            if plan is not None:
                plan.fire(
                    kind,
                    task_index,
                    attempt,
                    speculative=speculative,
                    in_worker=_IS_POOL_WORKER,
                )
            result, counters = attempt_fn(attempt)
            elapsed = time.monotonic() - started
            if limit is not None and elapsed > limit:
                raise TaskTimeoutError(kind, task_index, attempt, elapsed, limit)
        except Exception as exc:  # noqa: BLE001 - task code may raise anything
            if failures:
                exc.__cause__ = failures[-1]
            failures.append(exc)
            if isinstance(exc, TaskTimeoutError):
                timeouts += 1
            attempt += 1
            continue
        lost = first_attempt - 1
        fail_count = len(failures) + lost
        counters.setdefault(FRAMEWORK_GROUP, {})
        framework = counters[FRAMEWORK_GROUP]
        framework[TASK_ATTEMPTS] = framework.get(TASK_ATTEMPTS, 0) + attempt
        if fail_count:
            framework[TASK_RETRIES] = framework.get(TASK_RETRIES, 0) + fail_count
            framework[TASK_FAILURES] = framework.get(TASK_FAILURES, 0) + fail_count
        if timeouts:
            framework[TASKS_TIMED_OUT] = framework.get(TASKS_TIMED_OUT, 0) + timeouts
        return result, counters
    if not failures:  # budget consumed entirely by driver-side lost attempts
        lost_error = TaskLostError(kind, task_index, first_attempt - 1)
        raise TaskFailedError(kind, job.max_attempts, lost_error, causes=[lost_error])
    raise TaskFailedError(
        kind, job.max_attempts, failures[-1], causes=failures
    ) from failures[-1]


def _reduce_attempt(
    job: Job, records: Iterable[KeyValue], num_records: int, partition_bytes: int
) -> tuple[list[KeyValue], dict]:
    """One attempt of a reduce task.

    ``records`` may be a list (serial/relay) or a fresh spill-file stream
    (direct shuffle); ``num_records`` is the map-reported partition count,
    so the counter never requires materializing the stream.
    """
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    assert job.reducer is not None  # guarded by Job validation
    reducer = job.reducer()
    reducer.setup(context)
    counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_RECORDS, num_records)

    threshold = int(
        job.config.get("spill_threshold_bytes", DEFAULT_SPILL_THRESHOLD_BYTES)
    )
    sorter: ExternalSorter | None = None
    if partition_bytes > threshold:
        # Partition beyond the spill threshold: external merge sort with
        # the threshold as memory budget.  Deterministic and identical to
        # the in-memory path (same ordering + stable arrival-order ties).
        sorter = ExternalSorter(memory_budget=max(1, threshold), sort_key=job.sort_key)
        sorter.add_all(records)
        groups = sorted_groups(sorter)
    else:
        groups = sort_and_group(records, job.sort_key)

    try:
        for key, values in groups:
            counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_GROUPS)
            if job.value_sort_key is not None:
                values = iter(sorted(values, key=job.value_sort_key))
            reducer.reduce(key, values, context)
    finally:
        if sorter is not None:
            counters.increment(
                FRAMEWORK_GROUP, REDUCE_SPILLED_RECORDS, sorter.spilled_records
            )
            counters.increment(FRAMEWORK_GROUP, REDUCE_SPILL_RUNS, sorter.num_runs)
            sorter.close()
    reducer.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, REDUCE_OUTPUT_RECORDS, len(output))
    return output, counters.as_dict()


def _run_spec(spec: Any) -> Any:
    """Dispatch one spec to its executor (shared by serial and workers)."""
    if isinstance(spec, _MapTaskSpec):
        return _execute_map_task(spec)
    return _execute_reduce_task(spec)


def _run_pickled_spec(payload: bytes) -> Any:
    """Worker entry point: specs arrive pre-pickled by the driver.

    The driver pickles specs itself (instead of letting the executor do
    it) so :class:`EngineStats` can meter exactly what crossed the process
    boundary at zero extra cost.
    """
    return _run_spec(pickle.loads(payload))


@dataclass
class EngineStats:
    """Driver-side dispatch metrics for a :class:`MultiprocessEngine`.

    Kept out of job counters on purpose: job results stay bit-identical
    between engines while the perf harness still gets exact byte
    accounting.  ``broadcast_loads`` counts one-shot job localizations
    (at most one per worker per job); ``worker_pids`` the distinct workers
    that executed tasks.

    The fault-tolerance metrics meter the driver's recovery work:
    ``pool_restarts`` (worker pool respawned after a dead worker or hang
    kill), ``tasks_relaunched`` (task dispatches re-issued after a pool
    restart), ``tasks_timed_out`` (hung attempts the driver killed —
    post-hoc attempt timeouts are job counters instead),
    ``speculative_launched``/``speculative_wasted`` (backup attempts
    started / attempts whose output lost the race and was discarded).

    The shuffle data-plane meters quantify what the driver actually
    touched: ``driver_bytes`` is the intermediate (map-output) bytes that
    crossed the driver process — full encoded chunks on the relay path,
    only pickled manifests on the direct path (final job output returned
    to the caller is not shuffle traffic and is not counted);
    ``spill_files_written``/``spill_bytes_written`` count the direct
    path's on-disk spill chunks; ``fused_stages`` the reduce→map
    short-circuits taken by :meth:`MultiprocessEngine.run_chain`.
    """

    pools_created: int = 0
    jobs_broadcast: int = 0
    broadcast_bytes: int = 0
    spec_bytes: int = 0
    tasks_dispatched: int = 0
    broadcast_loads: int = 0
    worker_pids: set = field(default_factory=set)
    pool_restarts: int = 0
    tasks_relaunched: int = 0
    tasks_timed_out: int = 0
    speculative_launched: int = 0
    speculative_wasted: int = 0
    driver_bytes: int = 0
    spill_files_written: int = 0
    spill_bytes_written: int = 0
    fused_stages: int = 0

    @property
    def bytes_pickled(self) -> int:
        """Everything the driver pickled to dispatch work (broadcast + specs)."""
        return self.broadcast_bytes + self.spec_bytes


@dataclass
class _ShuffleState:
    """One job's gathered map output, ready for the reduce phase.

    ``gathered[p]`` holds partition ``p``'s data in map-task order: raw
    records (``mode="memory"``), encoded chunks (``"relay"``), or
    ``(path, file_bytes)`` manifest entries (``"direct"``).  The
    map-reported per-partition record/byte sums drive the shuffle
    counters and the reduce-side spill decision in every mode.
    """

    mode: str
    gathered: list[list]
    part_records: list[int]
    part_bytes: list[int]


class Engine:
    """Shared orchestration: split planning, shuffle accounting, result."""

    #: how map output reaches reduce tasks; pooled engines override
    _shuffle_mode = "memory"

    def run(
        self,
        job: Job,
        input_records: Sequence[KeyValue] | None = None,
        *,
        splits: list[Split] | None = None,
        num_map_tasks: int | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``input_records`` (or pre-built ``splits``).

        ``num_map_tasks`` controls split planning when raw records are
        given; when omitted, one split is planned per
        ``job.config["records_per_split"]`` records (default
        :data:`DEFAULT_RECORDS_PER_SPLIT`), at least one.  An explicit
        ``num_map_tasks`` always overrides the per-split size.
        """
        if (input_records is None) == (splits is None):
            raise ValueError("provide exactly one of input_records or splits")
        if splits is None:
            assert input_records is not None
            splits = self._plan_splits(job, input_records, num_map_tasks)

        num_partitions = job.num_reducers if job.reducer is not None else 0
        handle = self._job_handle(job)
        try:
            return self._run_phases(job, handle, splits, num_partitions)
        finally:
            self._release_job(handle)

    def run_chain(
        self,
        jobs: Sequence[Job],
        input_records: Sequence[KeyValue],
        *,
        num_map_tasks: int | None = None,
        fuse: bool | None = None,
    ) -> list[JobResult]:
        """Run a job chain; stage i+1 consumes stage i's output records.

        Returns the per-stage :class:`~repro.mapreduce.job.JobResult`
        list.  A stage's :class:`~repro.mapreduce.job.TaskFailedError` is
        re-raised annotated with ``stage_index``/``job_name``.  ``fuse``
        is accepted on every engine for interface compatibility; only
        engines with a direct shuffle plane implement fused chaining
        (:meth:`MultiprocessEngine.run_chain`), everything else runs the
        plain sequential chain.
        """
        del fuse  # no fused plane here; see MultiprocessEngine.run_chain
        results: list[JobResult] = []
        records: Sequence[KeyValue] = input_records
        for index, job in enumerate(jobs):
            try:
                result = self.run(job, records, num_map_tasks=num_map_tasks)
            except TaskFailedError as exc:
                exc.stage_index = index
                exc.job_name = job.name
                raise
            results.append(result)
            records = result.records
        return results

    def _plan_splits(
        self,
        job: Job,
        input_records: Sequence[KeyValue],
        num_map_tasks: int | None,
    ) -> list[Split]:
        if num_map_tasks is None:
            per_split = int(
                job.config.get("records_per_split", DEFAULT_RECORDS_PER_SPLIT)
            )
            if per_split < 1:
                raise ValueError(f"records_per_split must be >= 1, got {per_split}")
            num_map_tasks = max(1, len(input_records) // per_split)
        return split_by_count(input_records, num_map_tasks)

    def _run_phases(
        self, job: Job, handle: Any, splits: list[Split], num_partitions: int
    ) -> JobResult:
        counters = Counters()
        state = self._map_phase(job, handle, splits, num_partitions, counters)

        if job.reducer is None:
            records = [record for part in state.gathered for record in part]
            return JobResult(
                records=records,
                counters=counters,
                num_map_tasks=len(splits),
                num_reduce_tasks=0,
            )

        # Shuffle volume comes from the map-reported per-partition sums —
        # the records were measured exactly once, task-side.
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_RECORDS, sum(state.part_records))
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_BYTES, sum(state.part_bytes))

        reduce_outputs = self._reduce_phase(job, handle, state)
        records = []
        for output, counter_dict, info in reduce_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            self._note_worker(info)
            records.extend(output)
        return JobResult(
            records=records,
            counters=counters,
            num_map_tasks=len(splits),
            num_reduce_tasks=num_partitions,
        )

    def _map_phase(
        self,
        job: Job,
        handle: Any,
        splits: list[Split],
        num_partitions: int,
        counters: Counters,
    ) -> _ShuffleState:
        """Run the map tasks and gather their partitioned output by mode."""
        mode = self._shuffle_mode if num_partitions > 0 else "memory"
        spill_dir = self._shuffle_dir(handle) if mode == "direct" else None
        map_specs = [
            _MapTaskSpec(
                job=handle,
                records=split.records,
                num_partitions=num_partitions,
                encode=mode != "memory",
                spill_dir=spill_dir,
                task_index=index,
            )
            for index, split in enumerate(splits)
        ]
        map_outputs = self._run_tasks(map_specs, job)

        slots = max(1, num_partitions)
        gathered: list[list] = [[] for _ in range(slots)]
        part_records = [0] * slots
        part_bytes = [0] * slots
        for (partitions, counts, sizes), counter_dict, info in map_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            self._note_worker(info)
            if mode == "direct":
                # What crossed the driver for this task is its manifest.
                self.stats.driver_bytes += len(
                    pickle.dumps(partitions, protocol=pickle.HIGHEST_PROTOCOL)
                )
            for index, part in enumerate(partitions):
                if mode == "memory":
                    gathered[index].extend(part)
                elif mode == "relay":
                    if counts[index]:
                        gathered[index].append(part)
                        self.stats.driver_bytes += len(part)
                elif part is not None:  # direct: (path, file_bytes) entry
                    gathered[index].append(part)
                    self.stats.spill_files_written += 1
                    self.stats.spill_bytes_written += part[1]
                part_records[index] += counts[index]
                part_bytes[index] += sizes[index]
        return _ShuffleState(
            mode=mode,
            gathered=gathered,
            part_records=part_records,
            part_bytes=part_bytes,
        )

    def _reduce_phase(
        self,
        job: Job,
        handle: Any,
        state: _ShuffleState,
        *,
        next_stage: _NextStage | None = None,
    ) -> list[Any]:
        """Build and run the reduce tasks over gathered map output."""
        reduce_specs = []
        for index in range(len(state.gathered)):
            part = state.gathered[index]
            reduce_specs.append(
                _ReduceTaskSpec(
                    job=handle,
                    records=part if state.mode == "memory" else None,
                    chunks=part if state.mode == "relay" else None,
                    spill_paths=[entry[0] for entry in part]
                    if state.mode == "direct"
                    else None,
                    num_records=state.part_records[index],
                    partition_bytes=state.part_bytes[index],
                    task_index=index,
                    next_stage=next_stage,
                )
            )
        return self._run_tasks(reduce_specs, job)

    @staticmethod
    def auto(
        workload_hint: int | None = None,
        *,
        max_workers: int | None = None,
        serial_below: int = AUTO_SERIAL_MAX_RECORDS,
    ) -> "Engine":
        """Pick an engine from a workload-size hint (records through the run).

        ``workload_hint`` is the caller's estimate of how many records the
        job will push through map+shuffle (e.g. a scheme's
        ``metrics().communication_records``, or ``len(input_records)`` for
        plain jobs).  Below ``serial_below`` (default
        :data:`AUTO_SERIAL_MAX_RECORDS`, from the engine-scaling
        benchmark's measured crossover) a :class:`SerialEngine` is
        returned — at small scale pool startup and job broadcasts dominate
        and serial wins; at or above it, a :class:`MultiprocessEngine`
        with ``max_workers``.  ``None`` (unknown workload) conservatively
        picks serial.
        """
        if workload_hint is not None and workload_hint < 0:
            raise ValueError(f"workload_hint must be >= 0, got {workload_hint}")
        if workload_hint is None or workload_hint < serial_below:
            return SerialEngine()
        return MultiprocessEngine(max_workers=max_workers)

    def close(self) -> None:
        """Release engine resources (noop for in-process engines)."""

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- engine-specific hooks -------------------------------------------------
    def _job_handle(self, job: Job) -> Any:
        """How task specs reference the job (the job itself by default)."""
        return job

    def _release_job(self, handle: Any) -> None:
        """Called once the job's phases are done (noop by default)."""

    def _shuffle_dir(self, handle: Any) -> str:
        """Scratch dir for a job's spill files (direct-mode engines only)."""
        raise NotImplementedError  # pragma: no cover - direct mode only

    def _note_worker(self, info: dict) -> None:
        """Fold one task's worker info into engine stats (noop by default)."""

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        raise NotImplementedError


class SerialEngine(Engine):
    """Run every task in-process, one after another (deterministic).

    Fault-tolerance semantics are the worker-side subset: injected
    crashes/poisons/slow-tasks, retry backoff and the post-hoc attempt
    timeout all apply; worker-kill faults degrade to ordinary task
    failures and hung attempts cannot be preempted (there is no second
    process to kill them from).
    """

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        return [_run_spec(spec) for spec in specs]


def _dispose(resources: dict) -> None:
    """Shut down a pooled engine's externals (idempotent; GC-safe)."""
    pool = resources.pop("pool", None)
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
    tmpdir = resources.pop("tmpdir", None)
    if tmpdir is not None:
        tmpdir.cleanup()


class MultiprocessEngine(Engine):
    """Fan tasks out over a persistent process pool.

    The pool is created lazily on the first task batch and then reused for
    every later phase and job until :meth:`close` (or garbage collection)
    shuts it down — chained pipeline jobs pay process start-up exactly
    once.  Each job's static parts are broadcast once (see module
    docstring); :attr:`stats` accumulates dispatch metrics across runs.

    ``max_workers=None`` uses the executor default (CPU count).  Everything
    attached to the job must be picklable; task outputs come back in task
    order so results match :class:`SerialEngine` exactly.  Usable as a
    context manager::

        with MultiprocessEngine(max_workers=4) as engine:
            Pipeline([job1, job2], engine=engine).run(records)

    ``shuffle_mode`` picks the shuffle data plane (see module docstring):
    ``"direct"`` (default) moves map output through attempt-scoped spill
    files and only manifests cross the driver; ``"relay"`` is the legacy
    plane where the driver gathers and forwards encoded chunks.  Outputs
    and job counters are bit-identical either way.
    """

    def __init__(
        self, max_workers: int | None = None, *, shuffle_mode: str = "direct"
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if shuffle_mode not in SHUFFLE_MODES:
            raise ValueError(
                f"shuffle_mode must be one of {SHUFFLE_MODES}, got {shuffle_mode!r}"
            )
        self.max_workers = max_workers
        self._shuffle_mode = shuffle_mode
        self.stats = EngineStats()
        self._job_seq = 0
        self._resources: dict = {}
        self._finalizer = weakref.finalize(self, _dispose, self._resources)

    @property
    def shuffle_mode(self) -> str:
        """The engine's shuffle data plane (``"direct"`` or ``"relay"``)."""
        return self._shuffle_mode

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and remove broadcast files (engine reusable)."""
        _dispose(self._resources)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        pool = self._resources.get("pool")
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=_worker_init
            )
            self._resources["pool"] = pool
            self.stats.pools_created += 1
        return pool

    def _broadcast_dir(self) -> Path:
        tmpdir = self._resources.get("tmpdir")
        if tmpdir is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-engine-")
            self._resources["tmpdir"] = tmpdir
        return Path(tmpdir.name)

    # -- engine hooks ----------------------------------------------------------
    def _job_handle(self, job: Job) -> _JobRef:
        """Broadcast the job's static parts once; tasks carry a tiny ref."""
        self._job_seq += 1
        uid = f"job-{self._job_seq}"
        path = self._broadcast_dir() / f"{uid}.pkl"
        data = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(data)
        self.stats.jobs_broadcast += 1
        self.stats.broadcast_bytes += len(data)
        return _JobRef(uid=uid, path=str(path))

    def _release_job(self, handle: Any) -> None:
        if isinstance(handle, _JobRef):
            base = Path(handle.path)
            base.unlink(missing_ok=True)
            for marker in base.parent.glob(f"{base.stem}.*.began"):
                marker.unlink(missing_ok=True)
            # The job's spill files go with it — including orphans left by
            # lost attempts and losing speculative dispatches.
            shutil.rmtree(base.parent / f"{handle.uid}-shuffle", ignore_errors=True)

    def _shuffle_dir(self, handle: Any) -> str:
        assert isinstance(handle, _JobRef)
        path = Path(handle.path).parent / f"{handle.uid}-shuffle"
        path.mkdir(exist_ok=True)
        return str(path)

    def _note_worker(self, info: dict) -> None:
        self.stats.worker_pids.add(info["pid"])
        if info["loaded"]:
            self.stats.broadcast_loads += 1
        # A fused reduce task may also have localized the *next* job.
        self.stats.broadcast_loads += info.get("extra_loads", 0)

    # -- fused chaining --------------------------------------------------------
    @staticmethod
    def _fusable(prev: Job, nxt: Job) -> bool:
        """True when ``nxt``'s map phase can be elided at ``prev``'s reducers.

        Safe exactly when the next job's map phase is a pure identity
        reshuffle: the default :class:`~repro.mapreduce.job.Mapper` map
        (no subclass override, no setup/cleanup hooks) and no combiner —
        then partitioning the upstream reduce output at source is
        observationally identical to running the map tasks.  Either job
        can opt out with ``config["pipeline_fusion"]=False``.  A fault
        plan that could target the next job's (elided) map attempts also
        blocks fusion, so injected-fault runs stay bit-identical.
        """
        if prev.reducer is None or nxt.reducer is None or nxt.num_reducers < 1:
            return False
        if nxt.combiner is not None:
            return False
        if not prev.config.get("pipeline_fusion", True):
            return False
        if not nxt.config.get("pipeline_fusion", True):
            return False
        mapper = nxt.mapper
        if not (
            isinstance(mapper, type)
            and issubclass(mapper, Mapper)
            and mapper.map is Mapper.map
            and mapper.setup is Mapper.setup
            and mapper.cleanup is Mapper.cleanup
        ):
            return False
        plan = nxt.config.get("fault_plan")
        if plan is not None:
            if any(
                getattr(plan, rate, 0.0)
                for rate in ("crash_rate", "slow_rate", "kill_rate")
            ):
                return False
            if any(
                fault.task_kind in (None, "map")
                for fault in getattr(plan, "faults", ())
            ):
                return False
        return True

    def _gather_fused(
        self, reduce_outputs: list[Any], num_partitions: int, counters: Counters
    ) -> _ShuffleState:
        """Fold fused reduce manifests into the next stage's shuffle state."""
        gathered: list[list] = [[] for _ in range(num_partitions)]
        part_records = [0] * num_partitions
        part_bytes = [0] * num_partitions
        for fused, counter_dict, info in reduce_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            self._note_worker(info)
            self.stats.driver_bytes += len(
                pickle.dumps(fused.entries, protocol=pickle.HIGHEST_PROTOCOL)
            )
            for partition, entry in enumerate(fused.entries):
                if entry is not None:
                    gathered[partition].append(entry)
                    self.stats.spill_files_written += 1
                    self.stats.spill_bytes_written += entry[1]
                part_records[partition] += fused.counts[partition]
                part_bytes[partition] += fused.sizes[partition]
        return _ShuffleState(
            mode="direct",
            gathered=gathered,
            part_records=part_records,
            part_bytes=part_bytes,
        )

    def run_chain(
        self,
        jobs: Sequence[Job],
        input_records: Sequence[KeyValue],
        *,
        num_map_tasks: int | None = None,
        fuse: bool | None = None,
    ) -> list[JobResult]:
        """Run a chain, fusing adjacent stages where safe (direct mode).

        When stage i's reduce feeds a stage i+1 whose map phase is
        identity-shaped (:meth:`_fusable`), stage i's reduce tasks
        partition their output with stage i+1's partitioner and write its
        spill files directly — stage i+1 starts from disk, its identity
        map phase is elided, and stage i's records never reach the
        driver (its :class:`~repro.mapreduce.job.JobResult` has
        ``records_elided=True`` and an empty record list).  The elided
        map's data-plane counters (map input/output records and bytes,
        shuffle volume) are synthesized from the manifest sums and equal
        the unfused values exactly; only attempt bookkeeping
        (``task_attempts``) differs, since no map attempts run.

        ``fuse=None`` (the default) and ``fuse=True`` both fuse when
        safe; ``fuse=False`` forces the plain sequential chain.  Relay
        mode has no spill files to hand over, so it never fuses.
        """
        if fuse is False or self._shuffle_mode != "direct" or len(jobs) < 2:
            return super().run_chain(
                jobs, input_records, num_map_tasks=num_map_tasks
            )
        jobs = list(jobs)
        results: list[JobResult] = []
        records: Sequence[KeyValue] = input_records
        handles: dict[int, _JobRef] = {}

        def handle_for(index: int) -> _JobRef:
            if index not in handles:
                handles[index] = self._job_handle(jobs[index])
            return handles[index]

        pending: _ShuffleState | None = None  # spilled at source by stage i-1
        try:
            for index, job in enumerate(jobs):
                try:
                    handle = handle_for(index)
                    num_partitions = (
                        job.num_reducers if job.reducer is not None else 0
                    )
                    counters = Counters()
                    num_splits = 0
                    if pending is not None:
                        # Fused-in stage: its shuffle input is already on
                        # disk.  Synthesize the elided identity map's
                        # data-plane counters from the manifest sums so
                        # fused and unfused runs report identical volumes.
                        state = pending
                        pending = None
                        fed_records = sum(state.part_records)
                        fed_bytes = sum(state.part_bytes)
                        counters.increment(
                            FRAMEWORK_GROUP, MAP_INPUT_RECORDS, fed_records
                        )
                        counters.increment(
                            FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS, fed_records
                        )
                        counters.increment(
                            FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, fed_bytes
                        )
                    else:
                        splits = self._plan_splits(job, records, num_map_tasks)
                        num_splits = len(splits)
                        state = self._map_phase(
                            job, handle, splits, num_partitions, counters
                        )
                    if job.reducer is None:
                        records = [r for part in state.gathered for r in part]
                        results.append(
                            JobResult(records, counters, num_splits, 0)
                        )
                        continue
                    counters.increment(
                        FRAMEWORK_GROUP, SHUFFLE_RECORDS, sum(state.part_records)
                    )
                    counters.increment(
                        FRAMEWORK_GROUP, SHUFFLE_BYTES, sum(state.part_bytes)
                    )
                    next_stage = None
                    if index + 1 < len(jobs) and self._fusable(job, jobs[index + 1]):
                        next_handle = handle_for(index + 1)
                        next_stage = _NextStage(
                            job=next_handle,
                            num_partitions=jobs[index + 1].num_reducers,
                            spill_dir=self._shuffle_dir(next_handle),
                        )
                    reduce_outputs = self._reduce_phase(
                        job, handle, state, next_stage=next_stage
                    )
                    if next_stage is not None:
                        pending = self._gather_fused(
                            reduce_outputs, next_stage.num_partitions, counters
                        )
                        self.stats.fused_stages += 1
                        results.append(
                            JobResult(
                                [],
                                counters,
                                num_splits,
                                num_partitions,
                                records_elided=True,
                            )
                        )
                    else:
                        records = []
                        for output, counter_dict, info in reduce_outputs:
                            counters.merge(Counters.from_dict(counter_dict))
                            self._note_worker(info)
                            records.extend(output)
                        results.append(
                            JobResult(records, counters, num_splits, num_partitions)
                        )
                except TaskFailedError as exc:
                    exc.stage_index = index
                    exc.job_name = job.name
                    raise
            return results
        finally:
            for handle in handles.values():
                self._release_job(handle)

    def _teardown_pool(self, *, kill: bool = False) -> None:
        """Drop the current pool; ``kill`` terminates workers first.

        Killing is how hung tasks are cancelled: a worker stuck in task
        code never returns on its own, so the driver terminates the
        processes and lets the next :meth:`_ensure_pool` respawn a fresh
        pool (new workers re-localize broadcasts lazily from disk).
        """
        pool = self._resources.pop("pool", None)
        if pool is None:
            return
        if kill:
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)

    def _run_tasks(self, specs: list[Any], job: Job) -> list[Any]:
        """Dispatch one phase's tasks with recovery and speculation.

        A future-per-dispatch loop replaces ``pool.map`` so the driver can
        (a) respawn a broken pool and re-run only the lost in-flight
        tasks, (b) kill attempts that hang past the task timeout, and
        (c) launch speculative backup attempts for end-of-phase
        stragglers.  Results are keyed by task index, so output order —
        and therefore job results — is identical to :class:`SerialEngine`
        no matter which attempt of a task wins.
        """
        if not specs:
            return []
        kind = "map" if isinstance(specs[0], _MapTaskSpec) else "reduce"
        timeout = job.config.get("task_timeout_seconds")
        limit = float(timeout) if timeout is not None else None
        speculate = bool(job.config.get("speculative_execution", False))
        multiplier = float(job.config.get("speculative_multiplier", 2.0))
        fraction = float(job.config.get("speculative_fraction", 0.25))

        total = len(specs)
        results: dict[int, Any] = {}
        next_attempt = {index: 1 for index in range(total)}
        durations: list[float] = []
        inflight: dict[Future, int] = {}
        launched_at: dict[Future, float] = {}
        started_at: dict[Future, float] = {}
        budget: dict[Future, float] = {}
        errors: dict[int, BaseException] = {}

        def active_attempts(index: int) -> int:
            return sum(1 for i in inflight.values() if i == index)

        def dispatch(index: int, *, speculative: bool = False) -> None:
            spec = specs[index]
            spec.first_attempt = next_attempt[index]
            spec.speculative = speculative
            payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
            self.stats.spec_bytes += len(payload)
            self.stats.tasks_dispatched += 1
            future = self._ensure_pool().submit(_run_pickled_spec, payload)
            inflight[future] = index
            launched_at[future] = time.monotonic()
            if limit is not None:
                # A started attempt may legitimately consume the whole
                # remaining retry budget worker-side (each local retry gets
                # its own post-hoc window) before the driver declares it
                # hung; the slack absorbs dispatch/pickling overhead.
                remaining = job.max_attempts - next_attempt[index] + 1
                budget[future] = limit * remaining + max(1.0, limit)

        def resolve(index: int, future: Future, output: Any, now: float) -> None:
            results[index] = output
            errors.pop(index, None)
            durations.append(now - started_at.get(future, launched_at[future]))
            # Any sibling attempt still out is wasted speculative work:
            # cancel it if it never started, discard its output otherwise.
            for other, other_index in list(inflight.items()):
                if other_index == index:
                    self.stats.speculative_wasted += 1
                    if other.cancel():
                        inflight.pop(other, None)

        def restart_pool() -> None:
            """Respawn the pool; re-dispatch and charge unfinished tasks.

            A task is charged one lost attempt iff its current attempt's
            began-marker exists — i.e. a worker actually started it before
            the pool died.  Queued tasks re-dispatch on the same attempt
            number, so their attempt-pinned faults and retry budget are
            untouched.
            """
            self.stats.pool_restarts += 1
            charged: set[int] = set()
            for index in range(total):
                if index in results or index in charged:
                    continue
                handle = specs[index].job
                if isinstance(handle, _JobRef) and _marker_path(
                    handle, kind, specs[index].task_index, next_attempt[index]
                ).exists():
                    charged.add(index)
            for index in charged:
                next_attempt[index] += 1
            inflight.clear()
            launched_at.clear()
            started_at.clear()
            budget.clear()
            self._teardown_pool(kill=True)
            for index in range(total):
                if index in results:
                    continue
                if next_attempt[index] > job.max_attempts:
                    lost = TaskLostError(
                        kind, specs[index].task_index, next_attempt[index] - 1
                    )
                    raise TaskFailedError(
                        kind, job.max_attempts, lost, causes=[lost]
                    )
                self.stats.tasks_relaunched += 1
                dispatch(index)

        for index in range(total):
            dispatch(index)

        while len(results) < total:
            if not inflight:  # pragma: no cover - defensive
                raise RuntimeError("engine dispatch lost track of in-flight tasks")
            done, _ = wait(
                list(inflight), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for future in list(inflight):
                if future not in started_at and future.running():
                    started_at[future] = now
            broken = False
            try:
                for future in done:
                    index = inflight.pop(future, None)
                    if index is None or index in results or future.cancelled():
                        continue  # late loser of an already-resolved task
                    exc = future.exception()
                    if exc is None:
                        resolve(index, future, future.result(), now)
                        continue
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                        continue
                    errors[index] = exc
                    if active_attempts(index) == 0:
                        # No backup attempt can save this task: fail the
                        # job like the serial engine would.
                        for straggler in inflight:
                            straggler.cancel()
                        raise exc

                if not broken and limit is not None:
                    hung = {
                        inflight[future]
                        for future, begun in started_at.items()
                        if future in inflight
                        and inflight[future] not in results
                        and now - begun > budget[future]
                    }
                    if hung:
                        self.stats.tasks_timed_out += len(hung)
                        restart_pool()
                        continue

                if not broken and speculate and durations:
                    remaining = total - len(results)
                    if remaining <= max(1, math.ceil(fraction * total)):
                        threshold = multiplier * statistics.median(durations)
                        for future, index in list(inflight.items()):
                            if index in results or active_attempts(index) > 1:
                                continue
                            begun = started_at.get(future)
                            if begun is not None and now - begun > threshold:
                                self.stats.speculative_launched += 1
                                dispatch(index, speculative=True)
            except BrokenProcessPool:
                broken = True
            if broken:
                restart_pool()

        return [results[index] for index in range(total)]
