"""Job chaining: feed one job's output records into the next job's input.

The paper's generic algorithm is "two consecutive MR jobs" (§4); real
deployments chain more (a preprocessing job producing the element files,
the two pairwise jobs, an application job consuming the result lists).
:class:`Pipeline` runs such a chain on any engine and aggregates counters
per stage and overall.

Chains run through :meth:`~repro.mapreduce.runtime.Engine.run_chain`, so
an engine with a direct shuffle plane may *fuse* adjacent stages: when
the next job's map phase is identity-shaped, the upstream reduce tasks
write the next job's spill files at source and the intermediate records
never round-trip through the driver.  Fused stages report
``records_elided=True`` and an empty record list; counters are
unaffected.  Pass ``fuse=False`` to :meth:`Pipeline.run` (or set
``config["pipeline_fusion"]=False`` on a job) to force the plain
sequential chain — e.g. when per-stage records are inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .counters import Counters
from .job import Job, JobResult, KeyValue, TaskFailedError
from .runtime import Engine, SerialEngine


@dataclass
class PipelineResult:
    """Final records plus per-stage results and merged counters."""

    stages: list[JobResult] = field(default_factory=list)

    @property
    def records(self) -> list[KeyValue]:
        if not self.stages:
            raise ValueError("pipeline produced no stages")
        return self.stages[-1].records

    @property
    def counters(self) -> Counters:
        merged = Counters()
        for stage in self.stages:
            merged.merge(stage.counters)
        return merged

    def stage_counters(self, index: int) -> Counters:
        return self.stages[index].counters


class Pipeline:
    """An ordered chain of jobs executed on a single engine.

    Because all stages share one engine, a
    :class:`~repro.mapreduce.runtime.MultiprocessEngine` keeps its worker
    pool alive across the whole chain: process start-up is paid once and
    each stage's static parts are broadcast to every worker exactly once
    (not once per task).  The engine's owner controls its lifetime; use
    the pipeline as a context manager only when it should close the
    engine on exit.
    """

    def __init__(self, jobs: Sequence[Job], engine: Engine | None = None):
        if not jobs:
            raise ValueError("pipeline needs at least one job")
        self.jobs = list(jobs)
        self.engine = engine or SerialEngine()

    def close(self) -> None:
        """Release the engine's resources (worker pool, broadcast files)."""
        self.engine.close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        input_records: Sequence[KeyValue],
        *,
        num_map_tasks: int | None = None,
        fuse: bool | None = None,
    ) -> PipelineResult:
        """Run all jobs; stage i+1 consumes stage i's output records.

        A stage's :class:`~repro.mapreduce.job.TaskFailedError` is
        re-raised annotated with ``stage_index`` and ``job_name``, so a
        failure deep in a chain names the job that died; the engine (and
        its worker pool) stays usable for the next ``run``.

        ``fuse`` forwards to the engine's
        :meth:`~repro.mapreduce.runtime.Engine.run_chain`: ``None``
        (default) lets a direct-shuffle engine fuse adjacent stages where
        safe, ``False`` forces the plain sequential chain (every stage's
        records materialized in its :class:`~repro.mapreduce.job.JobResult`).
        """
        run_chain = getattr(self.engine, "run_chain", None)
        if run_chain is not None:
            stages = run_chain(
                self.jobs, input_records, num_map_tasks=num_map_tasks, fuse=fuse
            )
            return PipelineResult(stages=stages)
        # Duck-typed engines (benchmark replicas, external adapters) may
        # implement only run(): chain sequentially, never fused.
        stages = []
        records: Sequence[KeyValue] = input_records
        for index, job in enumerate(self.jobs):
            try:
                result = self.engine.run(job, records, num_map_tasks=num_map_tasks)
            except TaskFailedError as error:
                error.stage_index = index
                error.job_name = job.name
                raise
            stages.append(result)
            records = result.records
        return PipelineResult(stages=stages)
