"""Job chaining: feed one job's output records into the next job's input.

The paper's generic algorithm is "two consecutive MR jobs" (§4); real
deployments chain more (a preprocessing job producing the element files,
the two pairwise jobs, an application job consuming the result lists).
:class:`Pipeline` runs such a chain on any engine and aggregates counters
per stage and overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .counters import Counters
from .job import Job, JobResult, KeyValue, TaskFailedError
from .runtime import Engine, SerialEngine


@dataclass
class PipelineResult:
    """Final records plus per-stage results and merged counters."""

    stages: list[JobResult] = field(default_factory=list)

    @property
    def records(self) -> list[KeyValue]:
        if not self.stages:
            raise ValueError("pipeline produced no stages")
        return self.stages[-1].records

    @property
    def counters(self) -> Counters:
        merged = Counters()
        for stage in self.stages:
            merged.merge(stage.counters)
        return merged

    def stage_counters(self, index: int) -> Counters:
        return self.stages[index].counters


class Pipeline:
    """An ordered chain of jobs executed on a single engine.

    Because all stages share one engine, a
    :class:`~repro.mapreduce.runtime.MultiprocessEngine` keeps its worker
    pool alive across the whole chain: process start-up is paid once and
    each stage's static parts are broadcast to every worker exactly once
    (not once per task).  The engine's owner controls its lifetime; use
    the pipeline as a context manager only when it should close the
    engine on exit.
    """

    def __init__(self, jobs: Sequence[Job], engine: Engine | None = None):
        if not jobs:
            raise ValueError("pipeline needs at least one job")
        self.jobs = list(jobs)
        self.engine = engine or SerialEngine()

    def close(self) -> None:
        """Release the engine's resources (worker pool, broadcast files)."""
        self.engine.close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        input_records: Sequence[KeyValue],
        *,
        num_map_tasks: int | None = None,
    ) -> PipelineResult:
        """Run all jobs; stage i+1 consumes stage i's output records.

        A stage's :class:`~repro.mapreduce.job.TaskFailedError` is
        re-raised annotated with ``stage_index`` and ``job_name``, so a
        failure deep in a chain names the job that died; the engine (and
        its worker pool) stays usable for the next ``run``.
        """
        result = PipelineResult()
        records: Sequence[KeyValue] = input_records
        for index, job in enumerate(self.jobs):
            try:
                stage = self.engine.run(job, records, num_map_tasks=num_map_tasks)
            except TaskFailedError as exc:
                exc.stage_index = index
                exc.job_name = job.name
                raise
            result.stages.append(stage)
            records = stage.records
        return result
