"""Record codecs and byte accounting.

The engine meters shuffle and output volume in *bytes*, not just records,
because the paper's feasibility limits (maxws/maxis) are byte quantities.
Records cross task boundaries through a :class:`Codec`; the default pickle
codec measures the true wire size of whatever objects the application
emits.  For analytic experiments where payloads are synthetic,
:class:`SizedPayload` carries a declared size without allocating it, and
:func:`record_size` knows to honour the declaration.

**NumPy-aware buffer encoding.**  Shuffle chunks
(:func:`encode_records`/:func:`decode_records`) and the standalone
:class:`NumpyBufferCodec` use pickle protocol 5 with out-of-band buffers:
every ndarray payload contributes its raw data buffer to a framed binary
layout (``magic · buffer count · length-prefixed raw buffers · pickle
head``) instead of being copied element-wise through the pickle stream.
Encoding joins the raw memoryviews without an intermediate copy; decoding
hands zero-copy views of the wire bytes back to ``pickle.loads`` — decoded
arrays are therefore *read-only* views over the chunk (mappers/reducers
treat payloads as immutable, matching the MR contract).  Chunks without
ndarray payloads keep the plain-pickle wire format, so the two layouts
coexist and are distinguished by the leading magic bytes.

**Zero-copy chunk reads.**  Both decode entry points accept ``bytes`` or
any buffer (``memoryview``), so callers never need an intermediate
``bytes`` copy of a chunk that already lives somewhere — an ``mmap``'d
spill file (:func:`read_chunk_view`) or a shared-memory segment
(:mod:`repro.mapreduce.shm`).  The process-local :data:`io_meter` counts
what the read path actually did: ``mmap_reads`` for views served without
copying, ``bytes_copied`` for payload bytes slurped into process-private
buffers (eager file reads, broadcast localizations, relayed chunks).
Task executors snapshot it around each task so the driver can aggregate
per-engine totals without touching job counters.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Protocol

import numpy as np

#: frame marker for buffer-encoded chunks; a plain pickle stream starts
#: with the PROTO opcode (``b"\x80"``), so the layouts cannot collide.
_BUFFER_MAGIC = b"NPB1"

#: accounting overhead per ndarray on top of its raw data buffer
#: (dtype/shape/strides metadata in the pickle head)
_NDARRAY_OVERHEAD = 128


@dataclass
class IoMeter:
    """Process-local tally of how data-plane bytes entered this process.

    ``mmap_reads`` counts chunk reads served as zero-copy views over an
    ``mmap`` (or other pre-existing buffer); ``bytes_copied`` counts
    payload bytes materialized into process-private memory on the read
    path — eager whole-file reads, broadcast-cache localizations,
    driver-relayed chunks.  Decoding object *heads* (pickle metadata) is
    not counted; the meter answers "how many payload bytes were copied",
    the quantity the zero-copy data plane drives toward zero.

    Workers snapshot the meter around each task and report the delta in
    their task info, which the driver folds into
    :class:`~repro.mapreduce.stats.EngineStats`.
    """

    mmap_reads: int = 0
    bytes_copied: int = 0

    def snapshot(self) -> tuple[int, int]:
        return (self.mmap_reads, self.bytes_copied)

    def since(self, snapshot: tuple[int, int]) -> tuple[int, int]:
        """(mmap_reads, bytes_copied) accumulated since ``snapshot``."""
        return (self.mmap_reads - snapshot[0], self.bytes_copied - snapshot[1])


#: the process-wide meter (one per worker process; single-threaded tasks)
io_meter = IoMeter()


@dataclass(frozen=True)
class SizedPayload:
    """A stand-in for a payload of ``size_bytes`` bytes.

    The paper's experiments only depend on element *sizes* (500 KB blobs,
    etc.); materializing gigabytes of random bytes would make simulation
    needlessly slow.  A ``SizedPayload`` is accounted at its declared size
    by :func:`record_size` while costing a few dozen real bytes.  ``tag``
    distinguishes payloads in tests.
    """

    size_bytes: int
    tag: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {self.size_bytes}")


def declared_size(obj: Any) -> int | None:
    """The declared size of an object tree containing SizedPayloads, if any.

    Returns None when the object declares nothing (then the codec measures
    the real encoded size).  Containers sum their children's declarations
    plus a small per-item overhead so mixed trees stay roughly honest.
    """
    if isinstance(obj, SizedPayload):
        return obj.size_bytes
    if isinstance(obj, (list, tuple)):
        total = 0
        found = False
        for item in obj:
            child = declared_size(item)
            if child is not None:
                found = True
                total += child
            else:
                total += _quick_size(item)
        return total if found else None
    if isinstance(obj, dict):
        total = 0
        found = False
        for key, value in obj.items():
            child = declared_size(value)
            if child is not None:
                found = True
                total += child + _quick_size(key)
            else:
                total += _quick_size(key) + _quick_size(value)
        return total if found else None
    if hasattr(obj, "payload"):  # Element-like: payload + result map
        child = declared_size(obj.payload)
        if child is not None:
            extra = 0
            results = getattr(obj, "results", None)
            if isinstance(results, dict):
                extra = 16 * len(results)  # 8 B id + 8 B result, per §3
            return child + extra + 8  # + element id
    return None


@lru_cache(maxsize=65536)
def _pickled_size_of_hashable(obj: Any) -> int:
    """Memoized pickled size for hashable objects.

    Shuffle accounting calls :func:`record_size` once per record per phase;
    real workloads emit the same key/payload *shapes* over and over (task
    ids, element ids, repeated tuples), so the pickled size of a hashable
    object is cached by value.  Unhashable objects (dicts, lists, most
    mutable payloads) never reach this cache.
    """
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _quick_size(obj: Any) -> int:
    """Cheap size estimate for small plain objects (ids, floats, strings)."""
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, np.ndarray):
        # Raw buffer + metadata, without pickling the array to count it.
        return int(obj.nbytes) + _NDARRAY_OVERHEAD
    try:
        return _pickled_size_of_hashable(obj)
    except TypeError:  # unhashable: measure directly, no memo
        try:
            return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return 64
    except Exception:
        return 64


def record_size(key: Any, value: Any) -> int:
    """Accounting size in bytes of one key/value record.

    Declared sizes (SizedPayload trees) win; otherwise the pickled size is
    measured.  This is the quantity behind the engine's SHUFFLE_BYTES and
    MAP_OUTPUT_BYTES counters.
    """
    value_size = declared_size(value)
    if value_size is None:
        value_size = _quick_size(value)
    return _quick_size(key) + value_size


class Codec(Protocol):
    """Encode/decode records crossing process boundaries.

    ``decode`` accepts ``bytes`` or any readable buffer (``memoryview``)
    so chunks can be decoded straight out of mapped spill files and
    shared-memory segments without an intermediate copy.
    """

    def encode(self, obj: Any) -> bytes: ...

    def decode(self, data: bytes | memoryview) -> Any: ...


class PickleCodec:
    """Default codec: highest-protocol pickle."""

    def encode(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes | memoryview) -> Any:
        return pickle.loads(data)


def _encode_with_buffers(obj: Any) -> bytes:
    """Protocol-5 encode with ndarray buffers framed out-of-band.

    Objects without out-of-band buffers keep the plain pickle layout
    byte-for-byte; anything contributing :class:`pickle.PickleBuffer`
    payloads (ndarrays, mainly) gets the framed layout so raw data is
    joined into the wire bytes exactly once, never copied through the
    pickle stream itself.
    """
    buffers: list[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    if not buffers:
        return head
    try:
        raws = [buffer.raw() for buffer in buffers]
    except BufferError:
        # A non-contiguous buffer cannot be framed raw; fall back to the
        # in-band layout (pickle copies, correctness unaffected).
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    parts: list[Any] = [_BUFFER_MAGIC, struct.pack("<I", len(raws))]
    for raw in raws:
        parts.append(struct.pack("<Q", raw.nbytes))
        parts.append(raw)
    parts.append(head)
    return b"".join(parts)


def _decode_with_buffers(data: bytes | memoryview) -> Any:
    """Decode either wire layout; framed buffers are zero-copy views."""
    view = memoryview(data)
    if bytes(view[: len(_BUFFER_MAGIC)]) != _BUFFER_MAGIC:
        return pickle.loads(view)
    offset = len(_BUFFER_MAGIC)
    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    buffers: list[memoryview] = []
    for _ in range(count):
        (length,) = struct.unpack_from("<Q", view, offset)
        offset += 8
        buffers.append(view[offset : offset + length])
        offset += length
    return pickle.loads(view[offset:], buffers=buffers)


class NumpyBufferCodec:
    """Protocol-5 codec with out-of-band ndarray buffers (framed layout).

    Decoded arrays are read-only zero-copy views over the wire bytes;
    callers that must mutate a payload copy it first.
    """

    def encode(self, obj: Any) -> bytes:
        return _encode_with_buffers(obj)

    def decode(self, data: bytes | memoryview) -> Any:
        return _decode_with_buffers(data)


def encode_records(records: list[tuple[Any, Any]]) -> bytes:
    """Encode one shuffle partition chunk (a record list) to wire bytes.

    Map tasks pre-encode their partitions so the driver can gather and
    forward chunks to reduce tasks *without ever decoding them* — the
    streaming-shuffle half of the persistent-pool engine.  Chunks carrying
    ndarray payloads use the framed out-of-band buffer layout (see module
    docstring); anything else stays plain pickle.
    """
    return _encode_with_buffers(records)


def decode_records(data: bytes | memoryview) -> list[tuple[Any, Any]]:
    """Decode a partition chunk produced by :func:`encode_records`.

    Accepts the wire ``bytes`` or a view over them (an ``mmap``'d spill
    file, a shared-memory segment); framed ndarray payloads come back as
    zero-copy views over whatever buffer ``data`` wraps.
    """
    return _decode_with_buffers(data)


def write_chunk_file(path: str | Path, data: bytes) -> None:
    """Atomically persist one encoded chunk (spill file) at ``path``.

    Spill files are written by worker processes that can be killed
    mid-write (injected worker kills, hang kills, pool restarts), so the
    write goes to a sibling temp file first and is published with an
    atomic rename: a spill file either exists complete or not at all,
    never as a truncated chunk for a reader to trip over.
    """
    target = os.fspath(path)
    tmp = target + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, target)


def read_chunk_file(path: str | Path) -> bytes:
    """Read one chunk written by :func:`write_chunk_file` (eager copy).

    Prefer :func:`read_chunk_view` on the data plane — this variant
    materializes the whole chunk as ``bytes`` and meters the copy.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    io_meter.bytes_copied += len(data)
    return data


def read_chunk_view(path: str | Path) -> memoryview:
    """Zero-copy view of a chunk file, backed by a private ``mmap``.

    The mapping stays alive for as long as the returned view (or any
    record decoded out of it) is referenced; unlinking the file under a
    live mapping is safe on POSIX, so spill-directory cleanup never has
    to wait for readers.  Falls back to an eager (metered) read where the
    file cannot be mapped — empty files, filesystems without mmap.
    """
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty file or unmappable fs
            data = handle.read()
            io_meter.bytes_copied += len(data)
            return memoryview(data)
    io_meter.mmap_reads += 1
    return memoryview(mapped)


# ---------------------------------------------------------------------------
# Checksummed spill chunks (SPC1)
# ---------------------------------------------------------------------------
#
# Published spill files are the only durable intermediate state in the
# system (the job journal resumes from them), so they carry an integrity
# header in front of the NPB1/pickle payload::
#
#     offset  size  field
#     ------  ----  -----------------------------------------------
#          0     4  magic  b"SPC1"
#          4     1  flags  (bit 0: payload CRC present)
#          5     4  crc32  of the payload  (<I, zlib.crc32 & 0xFFFFFFFF)
#          9     8  payload length in bytes  (<Q)
#         17     …  payload (NPB1-framed or plain-pickle record chunk)
#
# CRC32C would be the Hadoop-faithful choice but needs a C extension the
# container doesn't ship, so the checksum is ``zlib.crc32`` (the
# documented fallback).  Truncation is caught by the length field even
# when checksumming is disabled (flags bit 0 clear, crc written as 0).

_SPILL_MAGIC = b"SPC1"
_SPILL_FLAG_CRC = 0x01
_SPILL_HEADER = struct.Struct("<4sBIQ")

#: size of the SPC1 header prefixed to every spill payload
SPILL_HEADER_BYTES = _SPILL_HEADER.size

#: process-local write/verify toggle; task executors set it from the job
#: config knob ``verify_spill_integrity`` (default on)
_verify_spills = True


def set_spill_verification(enabled: bool) -> None:
    """Toggle CRC computation on spill writes and verification on reads."""
    global _verify_spills
    _verify_spills = bool(enabled)


def spill_verification_enabled() -> bool:
    return _verify_spills


def spill_crc(data: bytes | memoryview) -> int:
    """Checksum of one spill payload (CRC32; see module note on CRC32C)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class SpillCorruptionError(RuntimeError):
    """A spill file failed its integrity check (bad CRC, truncation, bad
    framing).

    Corruption of a *published* spill file is not the reading task's
    fault and cannot be cured by re-running the reader, so the attempt
    loop must not burn retry budget on it (``task_retryable = False``);
    the driver instead quarantines the file and re-executes the upstream
    map attempt that produced it.
    """

    #: consumed by the attempt loop: re-raise instead of retrying
    task_retryable = False

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"spill file {path}: {reason}")
        self.path = str(path)
        self.reason = reason

    def __reduce__(self):  # survive the process boundary with fields intact
        return (type(self), (self.path, self.reason))


def write_spill_chunk(path: str | Path, payload: bytes, *, durable: bool = False) -> int:
    """Atomically publish one checksummed spill chunk; returns bytes written.

    Like :func:`write_chunk_file` (temp file + atomic rename) but with the
    SPC1 integrity header prefixed.  ``durable=True`` additionally fsyncs
    before the rename — journaled engines need the payload on disk before
    the journal records the manifest, otherwise a driver crash could leave
    a journal that promises files the page cache never flushed.
    """
    flags = _SPILL_FLAG_CRC if _verify_spills else 0
    crc = spill_crc(payload) if flags else 0
    header = _SPILL_HEADER.pack(_SPILL_MAGIC, flags, crc, len(payload))
    target = os.fspath(path)
    tmp = target + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(payload)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, target)
    return SPILL_HEADER_BYTES + len(payload)


def read_spill_chunk(path: str | Path) -> memoryview:
    """Verified zero-copy view of a spill payload written by
    :func:`write_spill_chunk`.

    Raises :class:`SpillCorruptionError` on a bad magic, a short header, a
    payload shorter or longer than the header declares, or (when
    verification is enabled and the writer recorded one) a CRC mismatch.
    """
    view = read_chunk_view(path)
    if view.nbytes < SPILL_HEADER_BYTES:
        raise SpillCorruptionError(
            os.fspath(path), f"truncated header ({view.nbytes} of {SPILL_HEADER_BYTES} bytes)"
        )
    magic, flags, crc, length = _SPILL_HEADER.unpack_from(view, 0)
    if magic != _SPILL_MAGIC:
        raise SpillCorruptionError(os.fspath(path), f"bad magic {magic!r}")
    payload = view[SPILL_HEADER_BYTES:]
    if payload.nbytes != length:
        raise SpillCorruptionError(
            os.fspath(path), f"truncated payload ({payload.nbytes} of {length} bytes)"
        )
    if flags & _SPILL_FLAG_CRC and _verify_spills:
        actual = spill_crc(payload)
        if actual != crc:
            raise SpillCorruptionError(
                os.fspath(path), f"CRC mismatch (stored {crc:#010x}, computed {actual:#010x})"
            )
    return payload
