"""Record codecs and byte accounting.

The engine meters shuffle and output volume in *bytes*, not just records,
because the paper's feasibility limits (maxws/maxis) are byte quantities.
Records cross task boundaries through a :class:`Codec`; the default pickle
codec measures the true wire size of whatever objects the application
emits.  For analytic experiments where payloads are synthetic,
:class:`SizedPayload` carries a declared size without allocating it, and
:func:`record_size` knows to honour the declaration.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Protocol


@dataclass(frozen=True)
class SizedPayload:
    """A stand-in for a payload of ``size_bytes`` bytes.

    The paper's experiments only depend on element *sizes* (500 KB blobs,
    etc.); materializing gigabytes of random bytes would make simulation
    needlessly slow.  A ``SizedPayload`` is accounted at its declared size
    by :func:`record_size` while costing a few dozen real bytes.  ``tag``
    distinguishes payloads in tests.
    """

    size_bytes: int
    tag: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {self.size_bytes}")


def declared_size(obj: Any) -> int | None:
    """The declared size of an object tree containing SizedPayloads, if any.

    Returns None when the object declares nothing (then the codec measures
    the real encoded size).  Containers sum their children's declarations
    plus a small per-item overhead so mixed trees stay roughly honest.
    """
    if isinstance(obj, SizedPayload):
        return obj.size_bytes
    if isinstance(obj, (list, tuple)):
        total = 0
        found = False
        for item in obj:
            child = declared_size(item)
            if child is not None:
                found = True
                total += child
            else:
                total += _quick_size(item)
        return total if found else None
    if isinstance(obj, dict):
        total = 0
        found = False
        for key, value in obj.items():
            child = declared_size(value)
            if child is not None:
                found = True
                total += child + _quick_size(key)
            else:
                total += _quick_size(key) + _quick_size(value)
        return total if found else None
    if hasattr(obj, "payload"):  # Element-like: payload + result map
        child = declared_size(obj.payload)
        if child is not None:
            extra = 0
            results = getattr(obj, "results", None)
            if isinstance(results, dict):
                extra = 16 * len(results)  # 8 B id + 8 B result, per §3
            return child + extra + 8  # + element id
    return None


@lru_cache(maxsize=65536)
def _pickled_size_of_hashable(obj: Any) -> int:
    """Memoized pickled size for hashable objects.

    Shuffle accounting calls :func:`record_size` once per record per phase;
    real workloads emit the same key/payload *shapes* over and over (task
    ids, element ids, repeated tuples), so the pickled size of a hashable
    object is cached by value.  Unhashable objects (dicts, lists, most
    mutable payloads) never reach this cache.
    """
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _quick_size(obj: Any) -> int:
    """Cheap size estimate for small plain objects (ids, floats, strings)."""
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    try:
        return _pickled_size_of_hashable(obj)
    except TypeError:  # unhashable: measure directly, no memo
        try:
            return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return 64
    except Exception:
        return 64


def record_size(key: Any, value: Any) -> int:
    """Accounting size in bytes of one key/value record.

    Declared sizes (SizedPayload trees) win; otherwise the pickled size is
    measured.  This is the quantity behind the engine's SHUFFLE_BYTES and
    MAP_OUTPUT_BYTES counters.
    """
    value_size = declared_size(value)
    if value_size is None:
        value_size = _quick_size(value)
    return _quick_size(key) + value_size


class Codec(Protocol):
    """Encode/decode records crossing process boundaries."""

    def encode(self, obj: Any) -> bytes: ...

    def decode(self, data: bytes) -> Any: ...


class PickleCodec:
    """Default codec: highest-protocol pickle."""

    def encode(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


def encode_records(records: list[tuple[Any, Any]]) -> bytes:
    """Encode one shuffle partition chunk (a record list) to wire bytes.

    Map tasks pre-encode their partitions so the driver can gather and
    forward chunks to reduce tasks *without ever decoding them* — the
    streaming-shuffle half of the persistent-pool engine.
    """
    return pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL)


def decode_records(data: bytes) -> list[tuple[Any, Any]]:
    """Decode a partition chunk produced by :func:`encode_records`."""
    return pickle.loads(data)
