"""Input splits: how a job's input is carved into map tasks.

The execution model (§3) assumes "the input dataset is stored as files,
distributed on the participating nodes ... each file contains multiple
records".  A :class:`Split` is one map task's slice of those records,
optionally tagged with the node that stores it (for the cluster
simulator's locality accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from .._util import ceil_div

KeyValue = tuple[Any, Any]


@dataclass
class Split:
    """One map task's input: a list of records plus optional placement."""

    records: list[KeyValue]
    #: node id holding this split's data (None = unplaced / local run)
    location: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)


def split_by_count(records: Sequence[KeyValue], num_splits: int) -> list[Split]:
    """Carve records into ``num_splits`` contiguous, near-equal splits.

    Sizes differ by at most one record; trailing splits may be empty when
    there are fewer records than splits (they still run, as empty Hadoop
    splits do).
    """
    if num_splits < 1:
        raise ValueError(f"num_splits must be >= 1, got {num_splits}")
    n = len(records)
    base, extra = divmod(n, num_splits)
    splits = []
    start = 0
    for index in range(num_splits):
        size = base + (1 if index < extra else 0)
        splits.append(Split(records=list(records[start : start + size])))
        start += size
    return splits


def split_by_size(records: Sequence[KeyValue], max_records: int) -> list[Split]:
    """Carve records into splits of at most ``max_records`` each."""
    if max_records < 1:
        raise ValueError(f"max_records must be >= 1, got {max_records}")
    num_splits = max(1, ceil_div(len(records), max_records))
    return split_by_count(records, num_splits)


def assign_round_robin(splits: list[Split], num_nodes: int) -> list[Split]:
    """Tag splits with node locations round-robin (simulator placement)."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    for index, split in enumerate(splits):
        split.location = index % num_nodes
    return splits
