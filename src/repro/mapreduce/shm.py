"""Shared-memory working-set segments: one materialization per machine.

The paper's cost model is dominated by replicating the working set to
the tasks that evaluate it; PR 4 took the driver out of the payload
path, and this module removes the remaining single-box waste — *copies*.
On the default data plane every pool worker localizes its own copy of a
job's distributed cache (the broadcast working set): ``w`` workers ×
``j`` jobs unpickle the same payload store ``w·j`` times.  The shared
data plane (``MultiprocessEngine(data_plane="shm")``) materializes each
distinct cache object **once per machine** into a
``multiprocessing.shared_memory`` segment and ships only a tiny
:class:`SegmentRef` in the job broadcast; workers attach on demand and
decode NPB1-framed payloads as **read-only zero-copy views** over the
segment (the out-of-band buffer codec from
:mod:`repro.mapreduce.serialization`).  Replication factor per machine: 1.

Driver side, a :class:`SegmentHost` owns the segments.  Entries are
keyed by the identity of the cache object and **refcounted**, so a job
chain that attaches the same cache dict to several jobs (the cached
pairwise pipeline does exactly this) shares one segment across all of
them; the segment is unlinked when the last job releases it or when the
engine closes.  After a pool crash the host can :meth:`~SegmentHost.revive`
segments that disappeared (re-encoded from the retained source object
under the *same* name, so already-pickled task specs keep working).

Worker side, :func:`attach_object` attaches and decodes each segment at
most once per process.  Pool workers share the driver's
``multiprocessing.resource_tracker`` process (its fd is inherited across
fork and passed through spawn), and the tracker keeps *sets* of names —
so a worker's attach-time registration is a no-op duplicate of the
driver's create-time one, and the driver's ``unlink`` is the single
unregister.  Nothing worker-side may unregister: that would strip the
shared entry and make the driver's later unlink trip a tracker
``KeyError``.

Non-buffer payloads (plain pickle layout) still decode object-by-object
per worker — Python objects cannot be shared — but the wire bytes they
decode *from* are the shared segment, so no intermediate copy is made
and the ``bytes_copied`` meter stays flat.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass, field
from typing import Any

from .serialization import _decode_with_buffers, _encode_with_buffers

#: prefix of every segment name this module creates; the lifecycle tests
#: scan ``/dev/shm`` for it to prove nothing leaked.
SEGMENT_PREFIX = "repro-shm"


@dataclass(frozen=True)
class SegmentRef:
    """Wire-sized handle to a shared segment: name + payload byte count.

    ``nbytes`` is the encoded payload length — the segment itself may be
    rounded up to a page multiple, so decoding slices the buffer to
    exactly this many bytes.
    """

    name: str
    nbytes: int


def shm_available() -> bool:
    """Probe whether POSIX shared memory actually works here.

    Some containers mount no ``/dev/shm`` (or a zero-sized one); the
    engine downgrades to the default data plane instead of failing the
    first job.  The probe creates and immediately unlinks a minimal
    segment, so it is safe to call repeatedly.
    """
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
        probe.close()
        probe.unlink()
        return True
    except Exception:
        return False


def _segment_name() -> str:
    """Unique segment name: prefix + pid + random suffix (never reused)."""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"


def _create_segment(name: str, data: bytes):
    """Create a segment under ``name`` and copy ``data`` into it once."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=max(1, len(data)), name=name)
    segment.buf[: len(data)] = data
    return segment


@dataclass
class _Entry:
    """One hosted segment: the OS handle, its ref, and who still needs it."""

    source: Any  # strong ref: keeps id() stable and enables revive()
    segment: Any
    ref: SegmentRef
    refcount: int = 0


@dataclass
class SegmentHost:
    """Driver-side owner of shared-memory segments, keyed by cache object.

    ``materialize`` is idempotent per cache object: the first caller pays
    the encode + one copy into shared memory, later callers (other jobs
    broadcasting the same cache) bump a refcount.  ``release`` unlinks at
    refcount zero; ``close`` unlinks everything left (idempotent, called
    from the engine's GC finalizer too).
    """

    _entries: dict[int, _Entry] = field(default_factory=dict)
    _uid_to_key: dict[str, int] = field(default_factory=dict)

    def materialize(self, uid: str, cache: Any) -> tuple[SegmentRef, int]:
        """Ensure ``cache`` lives in a shared segment; account it to ``uid``.

        Returns ``(ref, created_bytes)`` where ``created_bytes`` is the
        segment size when this call actually materialized one and 0 when
        it joined an existing segment.
        """
        key = id(cache)
        entry = self._entries.get(key)
        created = 0
        if entry is None:
            data = _encode_with_buffers(cache)
            segment = _create_segment(_segment_name(), data)
            entry = _Entry(
                source=cache,
                segment=segment,
                ref=SegmentRef(name=segment.name, nbytes=len(data)),
            )
            self._entries[key] = entry
            created = len(data)
        entry.refcount += 1
        self._uid_to_key[uid] = key
        return entry.ref, created

    def release(self, uid: str) -> None:
        """Drop ``uid``'s claim; unlink the segment when nobody holds it."""
        key = self._uid_to_key.pop(uid, None)
        if key is None:
            return
        entry = self._entries.get(key)
        if entry is None:
            return
        entry.refcount -= 1
        if entry.refcount <= 0:
            del self._entries[key]
            _destroy(entry.segment)

    def revive(self) -> int:
        """Recreate segments that vanished (e.g. swept by an external
        tracker after a worker crash); returns how many were rebuilt.

        Rebuilt segments keep their original name and contents, so task
        specs already pickled with the old :class:`SegmentRef` re-attach
        transparently after the pool respawns.
        """
        rebuilt = 0
        from multiprocessing import shared_memory

        for entry in self._entries.values():
            try:
                probe = shared_memory.SharedMemory(name=entry.ref.name)
                probe.close()
                continue
            except FileNotFoundError:
                pass
            except Exception:  # pragma: no cover - platform-specific probes
                continue
            data = _encode_with_buffers(entry.source)
            entry.segment = _create_segment(entry.ref.name, data)
            rebuilt += 1
        return rebuilt

    def close(self) -> None:
        """Unlink every remaining segment (idempotent)."""
        entries = list(self._entries.values())
        self._entries.clear()
        self._uid_to_key.clear()
        for entry in entries:
            _destroy(entry.segment)


def _destroy(segment: Any) -> None:
    """Close and unlink one segment, tolerating an already-gone file."""
    try:
        segment.close()
    except Exception:  # pragma: no cover - BufferError from exported views
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover - defensive
        pass


# -- worker side ---------------------------------------------------------------

#: segments this process has attached and decoded, keyed by segment name.
#: Values keep the SharedMemory handle alive alongside the decoded object
#: (whose ndarrays are views into the mapping).
_ATTACHED: dict[str, tuple[Any, Any]] = {}

#: most-recently-attached segments kept per worker; older entries are
#: dropped (their mappings are reclaimed once no decoded view survives)
_ATTACH_CAP = 8

#: handles evicted while their decoded views were still alive.  Closing a
#: SharedMemory whose buffer is still exported raises BufferError — and
#: letting its __del__ try instead spews "Exception ignored" tracebacks.
#: Parking the handle here keeps the finalizer disarmed; later sweeps
#: retry the close once the views are gone.
_ZOMBIES: list[Any] = []


def _drop_attachment(name: str) -> None:
    segment, _obj = _ATTACHED.pop(name)
    _ZOMBIES.append(segment)
    _sweep_zombies()


def _sweep_zombies() -> None:
    survivors = []
    for segment in _ZOMBIES:
        try:
            segment.close()
        except BufferError:
            survivors.append(segment)
    _ZOMBIES[:] = survivors


def attach_object(ref: SegmentRef) -> Any:
    """Attach ``ref``'s segment and decode its payload (once per process).

    The decoded object's ndarray payloads are **read-only views** over
    the shared mapping — nothing is copied.  Raises ``FileNotFoundError``
    when the segment no longer exists (surfaces as an ordinary task
    failure; the driver revives segments on pool restart).
    """
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory

    # Attaching re-registers the name with the (shared) resource tracker;
    # that is a set no-op there, and cleanup stays with the driver's
    # unlink — see the module docstring.
    segment = shared_memory.SharedMemory(name=ref.name)
    view = segment.buf[: ref.nbytes].toreadonly()
    obj = _decode_with_buffers(view)
    _ATTACHED[ref.name] = (segment, obj)
    while len(_ATTACHED) > _ATTACH_CAP:
        _drop_attachment(next(iter(_ATTACHED)))
    return obj


def detach_all() -> None:
    """Drop every cached attachment (test hook; workers rely on the cap)."""
    for name in list(_ATTACHED):
        _drop_attachment(name)
    _sweep_zombies()
