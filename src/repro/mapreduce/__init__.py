"""Local MapReduce runtime: the substrate under the pairwise algorithms.

Reimplements the Hadoop-0.20 contract the paper targets — mappers,
sort/shuffle with deterministic partitioning, reducers, combiners,
distributed cache, counters, job chaining — with serial and multiprocess
executors, plus a block-placement DFS model for locality accounting.
"""

from .counters import (
    DRIVER_BYTES,
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    SHUFFLE_SPILL_FILES,
    Counters,
)
from .extsort import ExternalSorter, sorted_groups
from .faults import (
    CrashFault,
    FaultPlan,
    InjectedCrash,
    InjectedWorkerDeath,
    PoisonedRecordError,
    PoisonFault,
    SlowFault,
    WorkerKillFault,
)
from .partitioners import RangePartitioner, is_globally_sorted
from .hdfs import DistributedFileSystem
from .job import (
    Context,
    IdentityMapper,
    IdentityReducer,
    Job,
    JobResult,
    Mapper,
    Reducer,
    TaskFailedError,
    TaskLostError,
    TaskTimeoutError,
    records_from,
)
from .pipeline import Pipeline, PipelineResult
from .runtime import (
    AUTO_SERIAL_MAX_RECORDS,
    DEFAULT_RECORDS_PER_SPLIT,
    DEFAULT_SPILL_THRESHOLD_BYTES,
    SHUFFLE_MODES,
    Engine,
    EngineStats,
    MultiprocessEngine,
    SerialEngine,
)
from .serialization import NumpyBufferCodec, PickleCodec, SizedPayload, record_size
from .shuffle import hash_partition, sort_and_group, stable_hash
from .streaming import StreamingMapper, StreamingProtocolError, StreamingReducer
from .splits import Split, assign_round_robin, split_by_count, split_by_size
from .textio import (
    read_output_dir,
    read_records,
    run_job_on_files,
    write_partitioned,
    write_records,
)

__all__ = [
    "AUTO_SERIAL_MAX_RECORDS",
    "Context",
    "Counters",
    "CrashFault",
    "DEFAULT_RECORDS_PER_SPLIT",
    "DEFAULT_SPILL_THRESHOLD_BYTES",
    "DRIVER_BYTES",
    "DistributedFileSystem",
    "Engine",
    "EngineStats",
    "ExternalSorter",
    "FRAMEWORK_GROUP",
    "FaultPlan",
    "IdentityMapper",
    "IdentityReducer",
    "InjectedCrash",
    "InjectedWorkerDeath",
    "Job",
    "JobResult",
    "MAP_INPUT_RECORDS",
    "MAP_OUTPUT_BYTES",
    "MAP_OUTPUT_RECORDS",
    "Mapper",
    "MultiprocessEngine",
    "NumpyBufferCodec",
    "PickleCodec",
    "Pipeline",
    "PipelineResult",
    "PoisonFault",
    "PoisonedRecordError",
    "REDUCE_INPUT_GROUPS",
    "REDUCE_INPUT_RECORDS",
    "REDUCE_OUTPUT_RECORDS",
    "RangePartitioner",
    "Reducer",
    "SHUFFLE_BYTES",
    "SHUFFLE_MODES",
    "SHUFFLE_RECORDS",
    "SHUFFLE_SPILL_FILES",
    "SerialEngine",
    "SizedPayload",
    "SlowFault",
    "Split",
    "StreamingMapper",
    "StreamingProtocolError",
    "StreamingReducer",
    "TaskFailedError",
    "TaskLostError",
    "TaskTimeoutError",
    "WorkerKillFault",
    "assign_round_robin",
    "hash_partition",
    "is_globally_sorted",
    "read_output_dir",
    "read_records",
    "record_size",
    "records_from",
    "run_job_on_files",
    "sort_and_group",
    "sorted_groups",
    "split_by_count",
    "split_by_size",
    "stable_hash",
    "write_partitioned",
    "write_records",
]
