"""Partitioning, sorting, and grouping — the sort/shuffle phase.

Keys are partitioned with a *deterministic* hash (Python's builtin ``hash``
is salted per process via PYTHONHASHSEED, which would make multiprocess
runs non-reproducible and split keys across partitions between the driver
and the workers).  Within each partition, records are sorted by key and
grouped, reproducing Hadoop's guarantee that a reducer sees each key once
with all its values, keys in sorted order.
"""

from __future__ import annotations

import hashlib
import pickle
from itertools import groupby
from typing import Any, Callable, Iterable, Iterator

from .serialization import (
    SpillCorruptionError,
    decode_records,
    read_spill_chunk,
    record_size,
)

KeyValue = tuple[Any, Any]


def iter_spill_records(paths: Iterable[str]) -> Iterator[KeyValue]:
    """Stream one partition's records from its spill files, in manifest order.

    Reduce tasks on the direct shuffle path read their partition straight
    from the map tasks' spill files instead of driver-relayed chunks.
    Yielding files in manifest order (map-task order, fixed by the driver)
    reproduces the relay path's arrival order exactly, so the stable sort
    downstream breaks key ties identically and outputs stay bit-identical
    across shuffle planes.  Each call starts a fresh stream, which is what
    lets a retried reduce attempt re-read its input from scratch.  Files
    are mmap-mapped, not slurped: ndarray payloads decode as read-only
    views over the page cache with no intermediate ``bytes`` copy.

    Every file's SPC1 header is verified before decoding (and decode
    errors are promoted to :class:`SpillCorruptionError` naming the file),
    so a damaged spill file is always attributed to the producing map
    task rather than surfacing as an opaque pickle failure in the reducer.
    """
    for path in paths:
        payload = read_spill_chunk(path)
        try:
            records = decode_records(payload)
        except SpillCorruptionError:
            raise
        except Exception as exc:  # undetected damage within a valid frame
            raise SpillCorruptionError(str(path), f"undecodable payload: {exc}") from exc
        yield from records


def stable_hash(key: Any) -> int:
    """Process-independent 64-bit hash of an arbitrary picklable key.

    Ints and strings take a fast path; everything else hashes its canonical
    pickle.  Equal keys always collide (required for correctness); the
    spread only affects balance.
    """
    if isinstance(key, bool):  # bool before int: True/False pickle differently
        data = b"\x01" if key else b"\x00"
    elif isinstance(key, int):
        data = key.to_bytes((key.bit_length() + 8) // 8 + 1, "little", signed=True)
    elif isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    else:
        data = pickle.dumps(key, protocol=4)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


def hash_partition(key: Any, num_partitions: int) -> int:
    """Default partitioner: stable hash modulo partition count."""
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    return stable_hash(key) % num_partitions


def partition_records(
    records: Iterable[KeyValue],
    num_partitions: int,
    partitioner: Callable[[Any, int], int] | None = None,
) -> list[list[KeyValue]]:
    """Split records into ``num_partitions`` lists by key."""
    part_fn = partitioner or hash_partition
    partitions: list[list[KeyValue]] = [[] for _ in range(num_partitions)]
    for key, value in records:
        index = part_fn(key, num_partitions)
        if not 0 <= index < num_partitions:
            raise ValueError(
                f"partitioner returned {index} for key {key!r}, "
                f"outside [0, {num_partitions})"
            )
        partitions[index].append((key, value))
    return partitions


def partition_with_sizes(
    records: Iterable[KeyValue],
    num_partitions: int,
    partitioner: Callable[[Any, int], int] | None = None,
) -> tuple[list[list[KeyValue]], list[int]]:
    """Partition records and account their byte sizes in one pass.

    Returns ``(partitions, partition_bytes)`` where ``partition_bytes[p]``
    is the :func:`~repro.mapreduce.serialization.record_size` sum of
    partition ``p``.  Map tasks report these sums so the driver can meter
    ``SHUFFLE_BYTES`` without re-measuring every gathered record (the
    engine's old double byte-accounting).
    """
    part_fn = partitioner or hash_partition
    partitions: list[list[KeyValue]] = [[] for _ in range(num_partitions)]
    sizes = [0] * num_partitions
    for key, value in records:
        index = part_fn(key, num_partitions)
        if not 0 <= index < num_partitions:
            raise ValueError(
                f"partitioner returned {index} for key {key!r}, "
                f"outside [0, {num_partitions})"
            )
        partitions[index].append((key, value))
        sizes[index] += record_size(key, value)
    return partitions, sizes


def sort_and_group(
    records: list[KeyValue],
    sort_key: Callable[[Any], Any] | None = None,
) -> Iterator[tuple[Any, Iterator[Any]]]:
    """Sort a partition by key and yield (key, value-iterator) groups.

    ``sort_key`` maps a record key to a sortable proxy when keys are not
    naturally comparable (mixed types, dataclasses).  Grouping is by the
    *original* key, so distinct keys with equal proxies stay separate
    groups as long as they are adjacent after sorting; a tie-break on the
    stable hash keeps them deterministic.
    """
    if sort_key is None:
        ordering = lambda kv: kv[0]  # noqa: E731 - tiny inline key
    else:
        ordering = lambda kv: (sort_key(kv[0]), stable_hash(kv[0]))  # noqa: E731
    ordered = sorted(records, key=ordering)
    for key, group in groupby(ordered, key=lambda kv: kv[0]):
        yield key, (value for _key, value in group)


def run_combiner(
    combiner_factory: Callable[[], Any],
    records: list[KeyValue],
    context_factory: Callable[[], Any],
    sort_key: Callable[[Any], Any] | None = None,
) -> tuple[list[KeyValue], Any]:
    """Apply a combiner to one map task's output; returns (records, context).

    The combiner is reducer-shaped and runs over locally sorted groups —
    the same contract Hadoop gives: it may run zero or more times, so it
    must be algebraically safe (associative + commutative contributions).
    Here it runs exactly once per map task, which tests can rely on.
    """
    combiner = combiner_factory()
    context = context_factory()
    combiner.setup(context)
    for key, values in sort_and_group(records, sort_key):
        combiner.reduce(key, values, context)
    combiner.cleanup(context)
    return context.drain(), context
