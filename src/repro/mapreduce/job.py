"""Job specification: mappers, reducers, combiners, and their context.

The programming contract mirrors Hadoop 0.20's (the framework version the
paper used):

- a **Mapper** sees input records one at a time and emits key/value pairs;
- the framework **partitions** map output by key, **sorts** each partition,
  and **groups** equal keys;
- a **Reducer** sees each key once with the iterator of all its values and
  emits output records;
- an optional **Combiner** (reducer-shaped) runs on map-side output to
  shrink shuffle volume;
- tasks communicate with the framework only through their :class:`Context`
  (emit, counters, distributed-cache lookup, job configuration) — there is
  no other channel, enforcing the paper's execution model (§3: tasks
  compute on local data, no online communication).

Mapper/reducer *classes* (not instances) are attached to the :class:`Job`
so the multiprocess engine can instantiate them inside worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from .counters import Counters

KeyValue = tuple[Any, Any]


class Context:
    """Per-task facade: collect emitted records, counters, cache, config."""

    def __init__(
        self,
        counters: Counters,
        cache: dict[str, Any] | None = None,
        config: dict[str, Any] | None = None,
    ):
        self.counters = counters
        self._cache = cache or {}
        self.config = config or {}
        self._emitted: list[KeyValue] = []

    def emit(self, key: Any, value: Any) -> None:
        """Emit one key/value record to the next phase."""
        self._emitted.append((key, value))

    def cache_file(self, name: str) -> Any:
        """Fetch a distributed-cache entry by name (Hadoop's DistributedCache).

        Raises KeyError with the available names when absent — a missing
        cache file is a deployment bug, not a condition to silently skip.
        """
        try:
            return self._cache[name]
        except KeyError:
            raise KeyError(
                f"cache file {name!r} not attached to job; "
                f"available: {sorted(self._cache)}"
            ) from None

    def drain(self) -> list[KeyValue]:
        """Take and clear the emitted records (framework-internal)."""
        out = self._emitted
        self._emitted = []
        return out


class Mapper:
    """Base mapper: override :meth:`map`; setup/cleanup are optional hooks."""

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        """Called once per task before the first record."""

    def map(self, key: Any, value: Any, context: Context) -> None:
        """Process one input record; default is the identity mapper."""
        context.emit(key, value)

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        """Called once per task after the last record."""


class Reducer:
    """Base reducer: override :meth:`reduce`."""

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        """Called once per task before the first group."""

    def reduce(self, key: Any, values: Iterator[Any], context: Context) -> None:
        """Process one key group; default re-emits every value."""
        for value in values:
            context.emit(key, value)

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        """Called once per task after the last group."""


class IdentityMapper(Mapper):
    """Pass-through mapper (Algorithm 2's map does nothing)."""


class IdentityReducer(Reducer):
    """Pass-through reducer."""


@dataclass
class Job:
    """Declarative MR job description.

    ``mapper``/``reducer``/``combiner`` are zero-argument factories
    (typically the class itself); the engine instantiates one per task.
    ``num_reducers`` controls reduce-side parallelism; ``partitioner``
    (key, num_partitions) → partition overrides hash partitioning;
    ``sort_key`` orders keys within a partition (must make keys comparable);
    ``cache`` is the distributed cache payload, ``config`` arbitrary
    job-wide parameters readable by every task.  ``max_attempts`` is
    Hadoop's task-retry knob: a task raising an exception is re-executed
    from scratch (fresh mapper/reducer instance, fresh context) up to
    that many times before the job fails.

    The engine itself reads these optional ``config`` keys:

    - ``"records_per_split"`` — records per map split when the caller does
      not pass ``num_map_tasks`` (default
      :data:`~repro.mapreduce.runtime.DEFAULT_RECORDS_PER_SPLIT`);
    - ``"spill_threshold_bytes"`` — reduce partitions whose accounted size
      exceeds this go through the external merge sort instead of an
      in-memory sort (default
      :data:`~repro.mapreduce.runtime.DEFAULT_SPILL_THRESHOLD_BYTES`);
    - ``"pipeline_fusion"`` (bool, default True) — set False on either of
      two adjacent chained jobs to forbid fusing them (the reduce→map
      short-circuit in
      :meth:`~repro.mapreduce.runtime.MultiprocessEngine.run_chain`).

    Fault-tolerance knobs (all off by default; see
    :mod:`repro.mapreduce.faults` and the DESIGN "Fault model" section):

    - ``"task_timeout_seconds"`` — per-attempt wall-clock budget (Hadoop's
      ``mapred.task.timeout``).  An attempt that exceeds it counts as a
      failed attempt (:class:`TaskTimeoutError`, retried under
      ``max_attempts``); on the multiprocess engine a *hung* attempt that
      never returns is killed with its worker pool and re-dispatched.
    - ``"retry_backoff_seconds"`` — base delay between attempts; grows
      exponentially per retry with deterministic jitter (0 disables).
    - ``"speculative_execution"`` (bool) — Hadoop-style backup attempts on
      the multiprocess engine: near the end of a task batch, a task running
      past ``"speculative_multiplier"`` (default 2.0) × the median task
      time gets a backup attempt; the first finisher wins.
      ``"speculative_fraction"`` (default 0.25) sets the "near the end"
      threshold as a fraction of tasks still unfinished.
    - ``"fault_plan"`` — a :class:`~repro.mapreduce.faults.FaultPlan` for
      deterministic fault injection (tests/benchmarks only).
    """

    name: str
    mapper: Callable[[], Mapper] = IdentityMapper
    reducer: Callable[[], Reducer] | None = IdentityReducer
    combiner: Callable[[], Reducer] | None = None
    num_reducers: int = 1
    partitioner: Callable[[Any, int], int] | None = None
    sort_key: Callable[[Any], Any] | None = None
    #: secondary sort: order each key group's values before reduce sees
    #: them (Hadoop's composite-key secondary sort, without the plumbing)
    value_sort_key: Callable[[Any], Any] | None = None
    cache: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    max_attempts: int = 1

    def __post_init__(self) -> None:
        if self.num_reducers < 0:
            raise ValueError(f"num_reducers must be >= 0, got {self.num_reducers}")
        if self.num_reducers == 0 and self.reducer is not None:
            raise ValueError("num_reducers=0 (map-only) requires reducer=None")
        if self.reducer is None and self.combiner is not None:
            raise ValueError("a combiner without a reducer is meaningless")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")


class TaskFailedError(RuntimeError):
    """A task exhausted its attempts; wraps every attempt's failure.

    ``cause`` is the last attempt's error (kept for compatibility);
    ``causes`` lists all failed attempts in order.  The engine chains each
    attempt's exception to the previous one via ``__cause__`` before
    raising, so a traceback shows the whole retry history, not just the
    final error.  When the failure happened inside a
    :class:`~repro.mapreduce.pipeline.Pipeline`, ``stage_index`` and
    ``job_name`` identify the stage that died.
    """

    #: set by Pipeline when a chained stage fails
    stage_index: int | None = None
    job_name: str | None = None

    def __init__(
        self,
        task_kind: str,
        attempts: int,
        cause: BaseException,
        causes: list[BaseException] | None = None,
    ):
        super().__init__(
            f"{task_kind} task failed after {attempts} attempt(s): {cause!r}"
        )
        self.task_kind = task_kind
        self.attempts = attempts
        self.cause = cause
        self.causes = list(causes) if causes is not None else [cause]

    def __reduce__(self):
        # Exceptions cross process boundaries (pool worker -> driver);
        # the default reduce would replay __init__ with the formatted
        # message as the only argument and fail.
        return (
            type(self),
            (self.task_kind, self.attempts, self.cause, self.causes),
        )


class TaskTimeoutError(RuntimeError):
    """A task attempt exceeded the job's ``task_timeout_seconds`` budget.

    Raised *per attempt* inside the engine's retry loop — the task is
    re-executed like any other failed attempt until ``max_attempts`` runs
    out (then it surfaces wrapped in :class:`TaskFailedError`).
    """

    def __init__(
        self, task_kind: str, task_index: int, attempt: int, elapsed: float, limit: float
    ):
        super().__init__(
            f"{task_kind} task {task_index} attempt {attempt} ran "
            f"{elapsed:.3f}s, over the {limit:.3f}s timeout"
        )
        self.task_kind = task_kind
        self.task_index = task_index
        self.attempt = attempt
        self.elapsed = elapsed
        self.limit = limit

    def __reduce__(self):
        return (
            type(self),
            (self.task_kind, self.task_index, self.attempt, self.elapsed, self.limit),
        )


class TaskLostError(RuntimeError):
    """A task's attempts were lost with dead worker processes.

    The multiprocess engine charges an attempt to every task that was
    in flight when its pool broke (or was killed for a hang); a task whose
    ``max_attempts`` budget is consumed entirely by lost attempts fails
    with this as the :class:`TaskFailedError` cause.
    """

    def __init__(self, task_kind: str, task_index: int, attempts: int):
        super().__init__(
            f"{task_kind} task {task_index} lost {attempts} attempt(s) to "
            "dead or timed-out worker processes"
        )
        self.task_kind = task_kind
        self.task_index = task_index
        self.attempts = attempts

    def __reduce__(self):
        return (type(self), (self.task_kind, self.task_index, self.attempts))


@dataclass
class JobResult:
    """Output of one job run: records, aggregated counters, task counts.

    ``records_elided`` marks a stage whose output never reached the
    driver because the engine fused it into the next stage's shuffle
    (see :meth:`~repro.mapreduce.runtime.MultiprocessEngine.run_chain`);
    ``records`` is then empty by construction, not because the job
    emitted nothing — counters still report the true record volumes.
    """

    records: list[KeyValue]
    counters: Counters
    num_map_tasks: int
    num_reduce_tasks: int
    records_elided: bool = False

    def values(self) -> list[Any]:
        """Just the values of the output records."""
        if self.records_elided:
            raise ValueError(
                "stage records were elided by fused chaining; "
                "re-run with fuse=False to materialize them"
            )
        return [value for _key, value in self.records]

    def as_dict(self) -> dict[Any, Any]:
        """Output records as a key→value dict (keys must be unique)."""
        if self.records_elided:
            raise ValueError(
                "stage records were elided by fused chaining; "
                "re-run with fuse=False to materialize them"
            )
        out: dict[Any, Any] = {}
        for key, value in self.records:
            if key in out:
                raise ValueError(f"duplicate output key {key!r}")
            out[key] = value
        return out


def records_from(values: Iterable[Any]) -> list[KeyValue]:
    """Wrap plain values into (index, value) input records."""
    return [(index, value) for index, value in enumerate(values)]
