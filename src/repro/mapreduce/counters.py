"""Hadoop-style hierarchical counters.

Counters are the MR framework's only side channel for metrics: mappers and
reducers increment named counters in groups, the framework aggregates them
across tasks, and the job result exposes the totals.  The evaluation
harness uses them to *measure* the quantities the paper's Table 1 predicts
(records shuffled, bytes materialized, pair evaluations per task).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

# Framework counter names (group FRAMEWORK_GROUP).
FRAMEWORK_GROUP = "framework"
MAP_INPUT_RECORDS = "map_input_records"
MAP_OUTPUT_RECORDS = "map_output_records"
MAP_OUTPUT_BYTES = "map_output_bytes"
COMBINE_INPUT_RECORDS = "combine_input_records"
COMBINE_OUTPUT_RECORDS = "combine_output_records"
SHUFFLE_RECORDS = "shuffle_records"
SHUFFLE_BYTES = "shuffle_bytes"
REDUCE_INPUT_GROUPS = "reduce_input_groups"
REDUCE_INPUT_RECORDS = "reduce_input_records"
REDUCE_OUTPUT_RECORDS = "reduce_output_records"

# Engine-plane meter names.  These quantities are metered in
# :class:`~repro.mapreduce.runtime.EngineStats`, NOT in job counters —
# serial and pooled runs must stay bit-identical, and how records moved
# (driver relay vs direct spill files) is an engine property, not a job
# property.  The names are defined here so the CI shuffle guard and the
# benchmarks reference one spelling.
DRIVER_BYTES = "driver_bytes"
SHUFFLE_SPILL_FILES = "shuffle_spill_files"


class Counters:
    """A two-level map ``group → name → int`` with merge support.

    >>> c = Counters()
    >>> c.increment("app", "pairs", 3)
    >>> c.get("app", "pairs")
    3
    """

    def __init__(self) -> None:
        self._data: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` (may be negative) to counter ``group:name``."""
        self._data[group][name] += amount

    def set_max(self, group: str, name: str, value: int) -> None:
        """Raise a *gauge* counter to ``value`` if larger.

        Gauges aggregate by maximum instead of sum (the framework merges
        them the same way — see :meth:`merge`), which is what per-task
        peak quantities like working-set size need.  Gauge names must
        carry the ``max_`` prefix so merge knows how to combine them.
        """
        if not name.startswith("max_"):
            raise ValueError(f"gauge counters must be named max_*, got {name!r}")
        if value > self._data[group][name]:
            self._data[group][name] = value

    def get(self, group: str, name: str) -> int:
        """Current value; 0 for a counter never incremented."""
        return self._data.get(group, {}).get(name, 0)

    def group(self, group: str) -> dict[str, int]:
        """Snapshot of one counter group."""
        return dict(self._data.get(group, {}))

    def merge(self, other: "Counters") -> None:
        """Fold another task's counters into this one (framework aggregation).

        Plain counters add; ``max_*`` gauges take the maximum across tasks.
        """
        for group, names in other._data.items():
            for name, value in names.items():
                if name.startswith("max_"):
                    if value > self._data[group][name]:
                        self._data[group][name] = value
                else:
                    self._data[group][name] += value

    def items(self) -> Iterator[tuple[str, str, int]]:
        """Iterate ``(group, name, value)`` triples, sorted for stable output."""
        for group in sorted(self._data):
            for name in sorted(self._data[group]):
                yield group, name, self._data[group][name]

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Plain nested-dict snapshot (picklable across process boundaries)."""
        return {group: dict(names) for group, names in self._data.items()}

    @classmethod
    def from_dict(cls, data: dict[str, dict[str, int]]) -> "Counters":
        counters = cls()
        for group, names in data.items():
            for name, value in names.items():
                counters.increment(group, name, value)
        return counters

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"{g}:{n}={v}" for g, n, v in self.items()]
        return "Counters(" + ", ".join(lines) + ")"
