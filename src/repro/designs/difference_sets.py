"""Singer difference sets: cyclic projective planes in O(q) memory.

A *perfect difference set* ``D = {d₁ … d_{q+1}}`` modulo ``q̂ = q²+q+1``
has the property that every non-zero residue mod q̂ arises exactly once
as a difference ``dᵢ − dⱼ``.  Its translates ``D + t (mod q̂)`` are then
the lines of a projective plane of order q — the *Singer cycle*
construction.  For the design distribution scheme this is gold: instead
of materializing all ``q̂`` blocks (O(v·√v) memory), a node needs only
the q+1 numbers of D to answer both

- ``getSubsets(e)``:  element e (0-indexed point p = e−1) lies on blocks
  ``{(p − d) mod q̂ : d ∈ D}``, and
- block t's members: ``{(t + d) mod q̂ : d ∈ D}``,

in O(q) time — the same closed-form flavour the broadcast and block
schemes enjoy.

Construction (classical Singer): PG(2, q)'s points are the 1-dimensional
GF(q)-subspaces of GF(q³); a primitive element g of GF(q³) acts on them
as a single q̂-cycle, and the points lying in any GF(q)-hyperplane form
a difference set in the exponent group Z_q̂.  We walk ``x = gⁱ``
incrementally and test hyperplane membership:

- for prime q (GF(q³) built directly over GF(p), polynomial basis
  {1, x, x²}): membership in span{1, x} is just ``code < p²`` — O(1);
- for prime powers q = p^k: the kernel of the relative trace
  ``Tr(x) = x + x^q + x^{q²}`` is a GF(q)-hyperplane; we carry
  ``x, x^q, x^{q²}`` along the walk (one multiplication each by
  ``g, g^q, g^{q²}`` per step), so no per-step exponentiation.
"""

from __future__ import annotations

from functools import lru_cache

from .gf import GF
from .primes import is_prime_power, plane_size, prime_power_decompose


def _prime_factors(n: int) -> list[int]:
    """Distinct prime factors of n (trial division; n is small here)."""
    out = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


def find_primitive_element(field: GF) -> int:
    """Smallest generator of GF(q)*: order exactly q − 1.

    Checks candidates by verifying ``g^((q−1)/p) ≠ 1`` for every prime
    factor p of q − 1.
    """
    order = field.q - 1
    if order == 1:
        return 1
    factors = _prime_factors(order)
    for candidate in range(2, field.q):
        if all(field.pow(candidate, order // p) != 1 for p in factors):
            return candidate
    raise RuntimeError(f"no primitive element found in {field!r}")  # pragma: no cover


@lru_cache(maxsize=None)
def singer_difference_set(q: int) -> tuple[int, ...]:
    """Perfect difference set of size q+1 modulo q²+q+1 (Singer).

    Returns the sorted residues.  Raises for non-prime-power q (no plane
    is known to exist there — cf. the existence conditions the paper's
    §5.3 alludes to).
    """
    if not is_prime_power(q):
        raise ValueError(f"Singer construction needs a prime power, got {q}")
    p, k = prime_power_decompose(q)
    cubic = GF(p ** (3 * k))
    g = find_primitive_element(cubic)
    q_hat = plane_size(q)
    total = cubic.q - 1  # q³ − 1 powers of g

    residues: set[int] = set()
    if k == 1:
        # Polynomial basis over GF(p) = GF(q): hyperplane span{1, x} is
        # exactly the codes below p² (zero x²-coefficient).
        bound = p * p
        x = 1
        for i in range(total):
            if x < bound:
                residues.add(i % q_hat)
            x = cubic.mul(x, g)
    else:
        # Relative trace kernel: Tr(x) = x + x^q + x^{q²} = 0.  Carry the
        # three conjugate walks together; each steps by a fixed factor.
        gq = cubic.pow(g, q)
        gq2 = cubic.pow(g, q * q)
        x, y, z = 1, 1, 1  # g⁰, (g⁰)^q, (g⁰)^{q²}
        for i in range(total):
            if cubic.add(cubic.add(x, y), z) == 0:
                residues.add(i % q_hat)
            x = cubic.mul(x, g)
            y = cubic.mul(y, gq)
            z = cubic.mul(z, gq2)

    diff_set = tuple(sorted(residues))
    if len(diff_set) != q + 1:
        raise RuntimeError(
            f"Singer walk for q={q} produced {len(diff_set)} residues, "
            f"expected {q + 1} — hyperplane assumption violated"
        )
    return diff_set


def verify_difference_set(diff_set: tuple[int, ...] | list[int], modulus: int) -> bool:
    """True iff every non-zero residue occurs exactly once as dᵢ − dⱼ."""
    seen: dict[int, int] = {}
    elements = list(diff_set)
    for a in elements:
        for b in elements:
            if a == b:
                continue
            d = (a - b) % modulus
            seen[d] = seen.get(d, 0) + 1
    return len(seen) == modulus - 1 and all(count == 1 for count in seen.values())


def cyclic_plane(q: int) -> list[list[int]]:
    """Projective plane of order q as translates of the Singer set.

    Block t (0-indexed) = ``{((t + d) mod q̂) + 1 : d ∈ D}`` (1-indexed
    points) — the O(q)-memory representation expanded for verification
    and interop with :mod:`repro.designs.bibd`.
    """
    diff_set = singer_difference_set(q)
    q_hat = plane_size(q)
    return [
        sorted(((t + d) % q_hat) + 1 for d in diff_set) for t in range(q_hat)
    ]
