"""Verification and manipulation of block designs.

The design scheme's correctness rests on the defining property of a
``(v, k, 1)``-design: *every 2-element subset of the point set lies in
exactly one block* (paper Definition 1).  This module provides exhaustive
verifiers for that property, the truncation operation the paper uses when
``v < q²+q+1`` ("design-like" collections, §5.3), and summary statistics
(block-size profile, per-point replication) used by the evaluation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from .._util import triangle_count

Block = Sequence[int]


@dataclass(frozen=True)
class DesignCheck:
    """Outcome of a design verification.

    ``ok`` is True iff every pair is covered exactly ``lam`` times and every
    block has exactly ``k`` points (when ``k`` was specified).  ``violations``
    holds up to ``max_violations`` human-readable findings for diagnostics.
    """

    ok: bool
    violations: tuple[str, ...]


def pair_coverage(blocks: Iterable[Block]) -> Counter:
    """Count, for every unordered point pair, how many blocks contain it."""
    cover: Counter = Counter()
    for block in blocks:
        members = sorted(set(block))
        for idx, a in enumerate(members):
            for b in members[idx + 1 :]:
                cover[(a, b)] += 1
    return cover


def verify_design(
    blocks: Sequence[Block],
    v: int,
    k: int | None = None,
    lam: int = 1,
    *,
    max_violations: int = 10,
) -> DesignCheck:
    """Check that ``blocks`` form a ``(v, k, lam)``-design over points 1..v.

    ``k=None`` skips the uniform-block-size requirement (the paper's
    truncated "design-like" structures intentionally violate it).
    """
    violations: list[str] = []

    def add(msg: str) -> None:
        if len(violations) < max_violations:
            violations.append(msg)

    point_range = range(1, v + 1)
    valid_points = set(point_range)
    for i, block in enumerate(blocks):
        members = set(block)
        if len(members) != len(list(block)):
            add(f"block {i} has duplicate points: {sorted(block)}")
        if not members <= valid_points:
            add(f"block {i} has out-of-range points: {sorted(members - valid_points)}")
        if k is not None and len(members) != k:
            add(f"block {i} has {len(members)} points, expected k={k}")

    cover = pair_coverage(blocks)
    expected_pairs = triangle_count(v)
    if lam > 0 and len(cover) != expected_pairs:
        missing = expected_pairs - len(cover)
        add(f"{missing} point pairs are covered by no block")
    for pair, count in cover.items():
        if count != lam:
            add(f"pair {pair} covered {count} times, expected {lam}")
            if len(violations) >= max_violations:
                break

    return DesignCheck(ok=not violations, violations=tuple(violations))


def truncate_design(blocks: Sequence[Block], v: int, *, min_block: int = 2) -> list[list[int]]:
    """Restrict a design on points ``1..q̂`` to the first ``v`` points.

    This is the paper's relaxation for ``v < q̂ = q²+q+1``: points beyond v
    "do not exist", so they are removed from every block, and blocks left
    with fewer than ``min_block`` points are dropped (a singleton block
    induces no pairs, so dropping it preserves exactly-once coverage).
    """
    out: list[list[int]] = []
    for block in blocks:
        kept = [point for point in block if point <= v]
        if len(kept) >= min_block:
            out.append(kept)
    return out


@dataclass(frozen=True)
class DesignStats:
    """Structural statistics of a (possibly truncated) design."""

    num_blocks: int
    min_block_size: int
    max_block_size: int
    mean_block_size: float
    #: replication factor r_i per point: how many blocks contain point i
    min_replication: int
    max_replication: int
    mean_replication: float


def design_stats(blocks: Sequence[Block], v: int) -> DesignStats:
    """Block-size and replication profile over points 1..v."""
    if not blocks:
        raise ValueError("design has no blocks")
    sizes = [len(set(b)) for b in blocks]
    replication: Counter = Counter()
    for block in blocks:
        for point in set(block):
            replication[point] += 1
    rep_values = [replication.get(point, 0) for point in range(1, v + 1)]
    return DesignStats(
        num_blocks=len(blocks),
        min_block_size=min(sizes),
        max_block_size=max(sizes),
        mean_block_size=sum(sizes) / len(sizes),
        min_replication=min(rep_values),
        max_replication=max(rep_values),
        mean_replication=sum(rep_values) / len(rep_values),
    )
