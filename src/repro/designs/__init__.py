"""Combinatorial designs substrate: primes, finite fields, projective planes.

This subpackage supplies everything the design distribution scheme
(paper §5.3) needs: prime/prime-power machinery to pick the plane order,
two independent projective-plane constructions, and verifiers for the
``(v, k, 1)``-design property that guarantees exactly-once pair coverage.
"""

from .bibd import (
    DesignCheck,
    DesignStats,
    design_stats,
    pair_coverage,
    truncate_design,
    verify_design,
)
from .difference_covers import (
    GREEDY_LIMIT,
    DifferenceCover,
    cover_size_lower_bound,
    difference_cover,
    greedy_difference_cover,
    perfect_difference_cover,
    prune_cover,
    structured_difference_cover,
    verify_difference_cover,
)
from .difference_sets import (
    cyclic_plane,
    find_primitive_element,
    singer_difference_set,
    verify_difference_set,
)
from .gf import GF, find_irreducible, is_irreducible
from .primes import (
    is_prime,
    is_prime_power,
    next_prime,
    next_prime_power,
    plane_order_for,
    plane_size,
    prime_power_decompose,
    primes_up_to,
)
from .projective import gf_plane, lee_plane, projective_plane

__all__ = [
    "DesignCheck",
    "DesignStats",
    "DifferenceCover",
    "GF",
    "GREEDY_LIMIT",
    "cover_size_lower_bound",
    "cyclic_plane",
    "design_stats",
    "difference_cover",
    "find_irreducible",
    "find_primitive_element",
    "gf_plane",
    "greedy_difference_cover",
    "is_irreducible",
    "is_prime",
    "is_prime_power",
    "lee_plane",
    "next_prime",
    "next_prime_power",
    "pair_coverage",
    "perfect_difference_cover",
    "plane_order_for",
    "plane_size",
    "prime_power_decompose",
    "primes_up_to",
    "projective_plane",
    "prune_cover",
    "singer_difference_set",
    "structured_difference_cover",
    "truncate_design",
    "verify_design",
    "verify_difference_cover",
    "verify_difference_set",
]
