"""Cyclic difference covers: quorum working sets for *arbitrary* v.

A *difference cover* ``D ⊆ Z_v`` has every non-zero residue mod v
expressible as ``dᵢ − dⱼ`` for some ``dᵢ, dⱼ ∈ D`` — at least once,
unlike a perfect difference set's exactly once.  Its translates
``D + t (mod v)`` are the cyclic quorums of Kleinheksel & Somani: any
two residues a, b share at least one translate (take δ = a − b = dᵢ − dⱼ
and t = b − dⱼ), so the translates cover all pairs while replicating
each element only ``|D|`` times.  Perfect difference sets achieve
``|D|(|D|−1) = v − 1`` (the counting optimum) but exist only for
``v = q² + q + 1`` with prime-power q; a difference cover exists for
*every* v, at a small constant factor above ``√v``.

Three constructions, best-of composed by :func:`difference_cover`:

- **perfect** — the Singer difference set when ``v = q² + q + 1`` for a
  prime power q (optimal: ``|D| = q + 1``);
- **greedy** — start from {0}, repeatedly add the residue covering the
  most still-uncovered difference classes (deterministic smallest-wins
  tie-break), then prune redundant members.  Used for
  ``v ≤ GREEDY_LIMIT``; empirically lands within ~15–35% of the
  counting bound;
- **structured** — ``{0, …, r−1} ∪ {r, 2r, …, mr}`` with
  ``m = ⌈⌊v/2⌋ / r⌉``: the base covers differences 1…r−1 and multiple
  ``ir`` minus base element ``j`` covers ``[ir−r+1, ir]``, so all
  classes up to ``mr ≥ ⌊v/2⌋`` are hit.  O(√v) to build (no search),
  ``|D| ≈ r + v/(2r)``, minimized near ``r = √(v/2)`` at ``≈ √2·√v`` —
  the large-v fallback, also pruned.

Every returned cover is verified; the counting lower bound
``|D|(|D|−1) ≥ v − 1`` (:func:`cover_size_lower_bound`) calibrates how
far a relaxed cover sits from optimal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from .difference_sets import singer_difference_set
from .primes import is_prime_power, plane_size

#: largest v the O(v²)-ish greedy search is attempted for; beyond it the
#: O(√v) structured construction (≈ √2·√v members after pruning) is used.
GREEDY_LIMIT = 1024


@dataclass(frozen=True)
class DifferenceCover:
    """A verified cyclic difference cover of Z_v."""

    v: int
    residues: tuple[int, ...]  #: sorted, always containing 0
    kind: str  #: "perfect" | "greedy" | "structured"

    @property
    def size(self) -> int:
        return len(self.residues)

    @property
    def is_perfect(self) -> bool:
        return self.kind == "perfect"


def cover_size_lower_bound(v: int) -> int:
    """Counting bound: ``|D|(|D|−1) ≥ v − 1`` ⇒ ``|D| ≥ ⌈(1+√(4v−3))/2⌉``.

    Each ordered pair of distinct members yields one difference, and all
    ``v − 1`` non-zero residues must appear.
    """
    if v < 1:
        raise ValueError(f"v must be >= 1, got {v}")
    if v <= 2:
        return v
    k = (1 + math.isqrt(4 * v - 3)) // 2
    while k * (k - 1) < v - 1:
        k += 1
    return k


def verify_difference_cover(residues, v: int) -> bool:
    """True iff every non-zero residue mod v equals some dᵢ − dⱼ."""
    members = sorted(set(r % v for r in residues))
    covered = set()
    for a in members:
        for b in members:
            if a != b:
                covered.add((a - b) % v)
    return len(covered) == v - 1


def perfect_difference_cover(v: int) -> tuple[int, ...] | None:
    """The Singer difference set when ``v = q²+q+1`` for prime-power q."""
    if v < 7:
        return None
    q = (math.isqrt(4 * v - 3) - 1) // 2
    for candidate in (q - 1, q, q + 1):
        if candidate >= 2 and plane_size(candidate) == v:
            if is_prime_power(candidate):
                return singer_difference_set(candidate)
            return None
    return None


def structured_difference_cover(v: int) -> tuple[int, ...]:
    """O(√v) two-scale cover ``{0…r−1} ∪ {r, 2r, …, mr}`` (unpruned)."""
    if v <= 2:
        return tuple(range(v))
    half = v // 2
    best: tuple[int, ...] | None = None
    # r + ⌈half/r⌉ is unimodal; scanning the √-neighbourhood is cheap and
    # keeps the choice exact rather than relying on the real-valued argmin.
    for r in range(1, math.isqrt(v) + 2):
        m = -(-half // r)  # ceil
        cover = tuple(range(r)) + tuple(i * r for i in range(1, m + 1))
        cover = tuple(sorted(set(x % v for x in cover)))
        if best is None or len(cover) < len(best):
            best = cover
    assert best is not None
    return best


def greedy_difference_cover(v: int) -> tuple[int, ...]:
    """Greedy max-new-coverage search (deterministic, unpruned).

    Difference *classes* are the unordered ±δ orbits {δ, v−δ}, indexed by
    δ ∈ 1…⌊v/2⌋; covering a class in either direction covers both
    ordered residues.  Adding any uncovered δ itself always covers ≥ 1
    new class (0 ∈ D), so the loop terminates in ≤ ⌊v/2⌋ steps.
    """
    if v <= 2:
        return tuple(range(v))
    half = v // 2
    members = [0]
    member_set = {0}
    uncovered = set(range(1, half + 1))
    while uncovered:
        best_candidate = -1
        best_gain: set[int] = set()
        for candidate in range(1, v):
            if candidate in member_set:
                continue
            gain = set()
            for d in members:
                delta = (candidate - d) % v
                delta = min(delta, v - delta)
                if delta in uncovered:
                    gain.add(delta)
            if len(gain) > len(best_gain):
                best_candidate, best_gain = candidate, gain
        members.append(best_candidate)
        member_set.add(best_candidate)
        uncovered -= best_gain
    return tuple(sorted(members))


def prune_cover(residues: tuple[int, ...], v: int) -> tuple[int, ...]:
    """Drop members whose removal keeps the cover valid (largest first).

    Greedy and structured constructions both overshoot near the end;
    pruning typically recovers 1–3 members.  0 is always kept so the
    translate t's members stay ``{t, …}`` (t owns its own element).
    """
    members = list(residues)
    for d in sorted(members, reverse=True):
        if d == 0:
            continue
        trial = [x for x in members if x != d]
        if len(trial) >= 2 and verify_difference_cover(trial, v):
            members = trial
    return tuple(sorted(members))


@lru_cache(maxsize=None)
def difference_cover(v: int) -> DifferenceCover:
    """Best available difference cover of Z_v, verified, cached per v.

    Perfect (Singer) when v is a prime-power plane size; otherwise the
    greedy search up to :data:`GREEDY_LIMIT`, the structured fallback
    beyond — both pruned.  The cache makes repeated scheme construction
    (chooser probing, per-job rebuilds) O(1) after the first hit.
    """
    if v < 1:
        raise ValueError(f"v must be >= 1, got {v}")
    if v <= 2:
        return DifferenceCover(v=v, residues=tuple(range(v)), kind="perfect")
    perfect = perfect_difference_cover(v)
    if perfect is not None:
        # Translating a difference set preserves it; shift so 0 ∈ D and
        # every translate t contains its own residue t.
        shift = min(perfect)
        residues = tuple(sorted((d - shift) % v for d in perfect))
        return DifferenceCover(v=v, residues=residues, kind="perfect")
    if v <= GREEDY_LIMIT:
        residues = prune_cover(greedy_difference_cover(v), v)
        kind = "greedy"
    else:
        residues = prune_cover(structured_difference_cover(v), v)
        kind = "structured"
    if not verify_difference_cover(residues, v):  # pragma: no cover - safety net
        raise RuntimeError(f"difference-cover construction failed for v={v}")
    return DifferenceCover(v=v, residues=residues, kind=kind)
