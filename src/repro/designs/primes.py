"""Primality and prime-power machinery for projective-plane construction.

The design distribution scheme (paper §5.3) needs, for a dataset of ``v``
elements, the *smallest* prime (or prime power) ``q`` such that
``q² + q + 1 ≥ v`` — the order of the projective plane whose blocks become
the working sets.  This module provides:

- a deterministic Miller–Rabin primality test (exact for all 64-bit inputs
  and correct far beyond via an extended witness set),
- prime-power detection and decomposition ``q = p^k``,
- searches for the next prime / prime power at or above a bound,
- the plane-order search :func:`plane_order_for` used by the design scheme.

Everything here is pure integer arithmetic — no probabilistic behaviour.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from .._util import isqrt_ceil

# Deterministic Miller-Rabin witness sets.  The first set is exact for
# n < 3,317,044,064,679,887,385,961,981 (> 2^64), per Sorenson & Webster.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def is_prime(n: int) -> bool:
    """Deterministic primality test (Miller–Rabin with fixed witnesses).

    Exact for every ``n`` a pairwise workload could plausibly use (well past
    2**64); runs in O(log³ n).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def integer_nth_root(x: int, n: int) -> int:
    """Floor of the n-th root of ``x`` (x >= 0, n >= 1), exact integer math."""
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1 or x in (0, 1):
        return x
    # Newton iteration seeded from the float estimate, then exact fix-up.
    r = max(1, int(round(x ** (1.0 / n))))
    while r**n > x:
        r -= 1
    while (r + 1) ** n <= x:
        r += 1
    return r


def prime_power_decompose(n: int) -> Optional[tuple[int, int]]:
    """Return ``(p, k)`` with ``n == p**k`` and p prime, or None.

    ``k == 1`` for plain primes.  Runs a root check per candidate exponent,
    O(log n) exponents overall.
    """
    if n < 2:
        return None
    if is_prime(n):
        return (n, 1)
    # n = p^k with k >= 2 implies p <= n^(1/2); try each exponent downward so
    # the *canonical* decomposition (largest k, smallest p) is returned.
    max_k = n.bit_length()  # 2^k <= n  =>  k <= log2(n)
    for k in range(max_k, 1, -1):
        p = integer_nth_root(n, k)
        if p >= 2 and p**k == n and is_prime(p):
            return (p, k)
    return None


def is_prime_power(n: int) -> bool:
    """True iff ``n = p**k`` for a prime p and k >= 1."""
    return prime_power_decompose(n) is not None


def next_prime(n: int) -> int:
    """Smallest prime ``>= n``."""
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


def next_prime_power(n: int) -> int:
    """Smallest prime power ``>= n``.

    Prime powers are dense enough (all primes are prime powers) that a
    linear scan from ``n`` terminates quickly; Bertrand guarantees a prime
    below ``2n``.
    """
    if n <= 2:
        return 2
    candidate = n
    while not is_prime_power(candidate):
        candidate += 1
    return candidate


def primes_up_to(limit: int) -> list[int]:
    """All primes ``<= limit`` via a basic sieve of Eratosthenes."""
    if limit < 2:
        return []
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    for i in range(2, math.isqrt(limit) + 1):
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
    return [i for i, flag in enumerate(sieve) if flag]


def iter_primes() -> Iterator[int]:
    """Unbounded ascending prime iterator (incremental trial via is_prime)."""
    yield 2
    n = 3
    while True:
        if is_prime(n):
            yield n
        n += 2


def plane_order_for(v: int, *, allow_prime_powers: bool = False) -> int:
    """Smallest plane order ``q`` with ``q² + q + 1 >= v`` (paper §5.3).

    With ``allow_prime_powers=False`` (the paper's choice — its Theorem 2
    construction uses mod-q arithmetic, which only yields a plane for prime
    q) the result is the smallest *prime* satisfying the bound.  With
    ``allow_prime_powers=True`` the smallest prime power is returned, which
    can shave replication when v sits just above a prime-power plane size
    (e.g. v = 21 → q = 4 instead of q = 5).
    """
    if v < 1:
        raise ValueError(f"v must be >= 1, got {v}")
    if v <= 3:
        # q=2 handles v up to 7 already; the bound below would still return
        # 2, but make the smallest admissible plane order explicit.
        return 2
    # Solve q² + q + 1 >= v  =>  q >= (-1 + sqrt(4v - 3)) / 2.
    q_min = (isqrt_ceil(4 * v - 3) - 1 + 1) // 2  # ceil of the real root
    while q_min * q_min + q_min + 1 < v:
        q_min += 1
    if allow_prime_powers:
        return next_prime_power(max(2, q_min))
    return next_prime(max(2, q_min))


def plane_size(q: int) -> int:
    """Number of points (= number of lines) of a projective plane of order q."""
    if q < 2:
        raise ValueError(f"plane order must be >= 2, got {q}")
    return q * q + q + 1
