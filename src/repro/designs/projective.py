"""Projective-plane constructions (the basis of the design scheme, §5.3).

Two independent constructions of a ``(q²+q+1, q+1, 1)``-design are provided:

:func:`lee_plane`
    The fast incidence construction of Lee, Kang & Choi cited by the paper's
    Theorem 2.  It uses only mod-q arithmetic and is valid for **prime** q.
    Blocks come out in the paper's exact order (D₁ … D_{q²+q+1}), which the
    design scheme relies on when truncating.

:func:`gf_plane`
    The classical construction over GF(q) (homogeneous coordinates): points
    and lines are the normalized non-zero vectors of GF(q)³, a point lies on
    a line iff their dot product vanishes.  Valid for every **prime power**
    q, at the cost of field arithmetic.

Both return blocks of **1-indexed** point ids in ``[1, q²+q+1]``, matching
the paper's ``s₁ … s_v`` convention.
"""

from __future__ import annotations

from typing import List

from .gf import GF
from .primes import is_prime, is_prime_power, plane_size

Block = List[int]


def lee_plane(q: int) -> list[Block]:
    """Construct a projective plane of prime order ``q`` (paper Theorem 2).

    Returns ``q²+q+1`` blocks of ``q+1`` 1-indexed point ids each:

    1. ``D₁   = {s_j | 1 ≤ j ≤ q+1}``
    2. ``D_i  = {s₁} ∪ {s_j | q(i−1)+2 ≤ j ≤ qi+1}``            for 1 < i ≤ q+1
    3. ``D_i  = {s_{h+2}} ∪ {s_{q(m+1) + ((l−hm) mod q) + 2}}`` for q+1 < i,
       with ``h = ⌊(i−2)/q⌋ − 1`` and ``l = (i−2) mod q``, m = 0 … q−1.
    """
    if not is_prime(q):
        raise ValueError(
            f"the Lee construction requires a prime order, got {q}; "
            "use gf_plane() for prime powers"
        )
    v = plane_size(q)
    blocks: list[Block] = []
    # Rule 1.
    blocks.append(list(range(1, q + 2)))
    # Rule 2.
    for i in range(2, q + 2):
        members = [1]
        members.extend(range(q * (i - 1) + 2, q * i + 2))
        blocks.append(members)
    # Rule 3.
    for i in range(q + 2, v + 1):
        h = (i - 2) // q - 1
        l = (i - 2) % q
        members = [h + 2]
        for m in range(q):
            members.append(q * (m + 1) + ((l - h * m) % q) + 2)
        blocks.append(members)
    return blocks


def _normalized_points(field: GF) -> list[tuple[int, int, int]]:
    """Canonical representatives of the projective points of PG(2, q).

    Each projective point is a non-zero vector of GF(q)³ up to scaling; the
    canonical representative has its first non-zero coordinate equal to 1.
    Enumeration order: ``(1, y, z)`` for all y, z; then ``(0, 1, z)``; then
    ``(0, 0, 1)`` — q² + q + 1 points total, in a stable deterministic order.
    """
    q = field.q
    points: list[tuple[int, int, int]] = []
    for y in range(q):
        for z in range(q):
            points.append((1, y, z))
    for z in range(q):
        points.append((0, 1, z))
    points.append((0, 0, 1))
    return points


def gf_plane(q: int) -> list[Block]:
    """Construct a projective plane of prime-power order ``q`` over GF(q).

    Points and lines are both indexed by :func:`_normalized_points`; block
    ``i`` collects the (1-indexed) ids of the points incident to line ``i``
    (dot product zero in GF(q)).
    """
    if not is_prime_power(q):
        raise ValueError(f"plane order must be a prime power, got {q}")
    field = GF(q)
    points = _normalized_points(field)
    index_of = {pt: i + 1 for i, pt in enumerate(points)}  # 1-indexed
    add, mul = field.add, field.mul

    blocks: list[Block] = []
    for line in points:  # lines are the same normalized triples (duality)
        a, b, c = line
        members: Block = []
        for pt in points:
            x, y, z = pt
            s = add(add(mul(a, x), mul(b, y)), mul(c, z))
            if s == 0:
                members.append(index_of[pt])
        blocks.append(members)
    return blocks


def projective_plane(q: int, *, prefer_lee: bool = True) -> list[Block]:
    """Plane of order ``q``: Lee construction for primes, GF(q) otherwise.

    ``prefer_lee=False`` forces the GF construction even for prime q (useful
    for cross-validation — both must be valid ``(q²+q+1, q+1, 1)`` designs,
    though the block orderings differ).
    """
    if prefer_lee and is_prime(q):
        return lee_plane(q)
    return gf_plane(q)
