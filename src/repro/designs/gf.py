"""Finite fields GF(p^k) for prime-power projective planes.

The paper's Theorem 2 gives a fast incidence construction that is valid for
*prime* plane orders.  Theorem 1 however promises a plane for every prime
*power* order q = p^k, via the classical construction over the field GF(q).
This module implements exactly enough finite-field machinery for that:

- arithmetic in GF(p) (k = 1) directly mod p,
- arithmetic in GF(p^k) as Z_p[x] modulo a monic irreducible polynomial of
  degree k (found by exhaustive search — plane orders are small),
- element encoding as integers in ``[0, q)`` (base-p digit vectors), which
  keeps elements hashable and cheap to store in incidence structures.

The API is deliberately minimal and allocation-free on the hot paths: all
element operations take and return plain ``int`` codes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence

from .primes import is_prime, prime_power_decompose

Poly = tuple[int, ...]  # little-endian coefficients over Z_p, no trailing zeros


def _poly_trim(coeffs: Sequence[int]) -> Poly:
    """Drop trailing zero coefficients; the zero polynomial is ``()``."""
    end = len(coeffs)
    while end > 0 and coeffs[end - 1] == 0:
        end -= 1
    return tuple(coeffs[:end])


def poly_add(a: Poly, b: Poly, p: int) -> Poly:
    """Sum of two polynomials over Z_p."""
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = (out[i] + c) % p
    return _poly_trim(out)


def poly_sub(a: Poly, b: Poly, p: int) -> Poly:
    """Difference of two polynomials over Z_p."""
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = (out[i] - c) % p
    return _poly_trim(out)


def poly_mul(a: Poly, b: Poly, p: int) -> Poly:
    """Product of two polynomials over Z_p (schoolbook; degrees are tiny)."""
    if not a or not b:
        return ()
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] = (out[i + j] + ca * cb) % p
    return _poly_trim(out)


def poly_divmod(a: Poly, b: Poly, p: int) -> tuple[Poly, Poly]:
    """Quotient and remainder of ``a / b`` over Z_p; b must be non-zero."""
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    rem = list(a)
    deg_b = len(b) - 1
    lead_inv = pow(b[-1], p - 2, p) if p > 2 else b[-1]  # b[-1]^{-1} mod p
    quot = [0] * max(0, len(a) - deg_b)
    while len(rem) - 1 >= deg_b and any(rem):
        rem_trimmed = _poly_trim(rem)
        if len(rem_trimmed) - 1 < deg_b:
            break
        rem = list(rem_trimmed)
        shift = len(rem) - 1 - deg_b
        factor = rem[-1] * lead_inv % p
        quot[shift] = factor
        for i, cb in enumerate(b):
            rem[shift + i] = (rem[shift + i] - factor * cb) % p
    return _poly_trim(quot), _poly_trim(rem)


def poly_mod(a: Poly, m: Poly, p: int) -> Poly:
    """Remainder of ``a`` modulo ``m`` over Z_p."""
    return poly_divmod(a, m, p)[1]


def poly_pow_mod(base: Poly, exp: int, m: Poly, p: int) -> Poly:
    """``base**exp mod m`` over Z_p by square-and-multiply."""
    result: Poly = (1,)
    base = poly_mod(base, m, p)
    while exp > 0:
        if exp & 1:
            result = poly_mod(poly_mul(result, base, p), m, p)
        base = poly_mod(poly_mul(base, base, p), m, p)
        exp >>= 1
    return result


def poly_gcd(a: Poly, b: Poly, p: int) -> Poly:
    """Monic gcd of two polynomials over Z_p."""
    while b:
        a, b = b, poly_mod(a, b, p)
    if not a:
        return ()
    # Normalize to monic.
    inv = pow(a[-1], p - 2, p) if a[-1] != 1 else 1
    return _poly_trim(tuple(c * inv % p for c in a))


def _iter_monic_polys(degree: int, p: int) -> Iterator[Poly]:
    """All monic polynomials of exactly ``degree`` over Z_p."""
    total = p**degree
    for code in range(total):
        coeffs = []
        c = code
        for _ in range(degree):
            coeffs.append(c % p)
            c //= p
        coeffs.append(1)  # monic leading coefficient
        yield tuple(coeffs)


def is_irreducible(f: Poly, p: int) -> bool:
    """Rabin irreducibility test for a monic polynomial over Z_p.

    ``f`` of degree k is irreducible iff ``x^(p^k) ≡ x (mod f)`` and for
    every prime divisor d of k, ``gcd(x^(p^(k/d)) - x, f) = 1``.
    """
    k = len(f) - 1
    if k <= 0:
        return False
    if k == 1:
        return True
    x: Poly = (0, 1)
    # x^(p^k) mod f must equal x.
    xq = x
    for _ in range(k):
        xq = poly_pow_mod(xq, p, f, p)
    if poly_sub(xq, x, p):
        return False
    # For each prime divisor d of k check the gcd condition.
    for d in _prime_divisors(k):
        xe = x
        for _ in range(k // d):
            xe = poly_pow_mod(xe, p, f, p)
        g = poly_gcd(poly_sub(xe, x, p), f, p)
        if g != (1,):
            return False
    return True


def _prime_divisors(n: int) -> list[int]:
    """Distinct prime divisors of n (n small)."""
    out = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


@lru_cache(maxsize=None)
def find_irreducible(p: int, k: int) -> Poly:
    """Lexicographically-first monic irreducible polynomial of degree k over Z_p.

    Deterministic, so GF(q) element codes are stable across runs.
    """
    if not is_prime(p):
        raise ValueError(f"p must be prime, got {p}")
    if k < 1:
        raise ValueError(f"degree must be >= 1, got {k}")
    if k == 1:
        return (0, 1)  # x itself; unused for k=1 arithmetic but well-defined
    for f in _iter_monic_polys(k, p):
        if is_irreducible(f, p):
            return f
    raise RuntimeError(f"no irreducible polynomial of degree {k} over GF({p})")


class GF:
    """The finite field GF(p^k) with elements encoded as ints in [0, p^k).

    An element code is the base-p digit encoding of its coefficient vector:
    code ``c`` represents the polynomial ``sum_i digit_i(c) * x^i``.  For
    k == 1 the arithmetic collapses to plain modular arithmetic and avoids
    the polynomial layer entirely.

    >>> F = GF(4)
    >>> F.mul(2, 3)   # x * (x+1) = x^2 + x = (x+1) + x ... in GF(4)
    1
    >>> F.add(2, 2)
    0
    """

    def __init__(self, q: int):
        decomp = prime_power_decompose(q)
        if decomp is None:
            raise ValueError(f"field order must be a prime power, got {q}")
        self.q = q
        self.p, self.k = decomp
        self.modulus: Poly = find_irreducible(self.p, self.k) if self.k > 1 else (0, 1)
        # Pre-built multiplication/inverse tables for small fields keep the
        # plane construction fast; beyond the threshold fall back to direct
        # computation per operation.
        self._mul_table: list[int] | None = None
        self._inv_table: list[int] | None = None
        if self.k > 1 and q <= 256:
            self._build_tables()

    # -- encoding -----------------------------------------------------------
    def encode(self, coeffs: Sequence[int]) -> int:
        """Integer code of the element with the given coefficient vector."""
        code = 0
        for c in reversed(list(coeffs)):
            code = code * self.p + (c % self.p)
        return code

    def decode(self, code: int) -> Poly:
        """Coefficient vector (little-endian) of an element code."""
        if not 0 <= code < self.q:
            raise ValueError(f"element code {code} out of range [0, {self.q})")
        coeffs = []
        while code:
            coeffs.append(code % self.p)
            code //= self.p
        return _poly_trim(coeffs)

    def elements(self) -> range:
        """All element codes, 0 .. q-1."""
        return range(self.q)

    # -- arithmetic ----------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        if self.k == 1:
            return (a + b) % self.p
        return self.encode(poly_add(self.decode(a), self.decode(b), self.p))

    def sub(self, a: int, b: int) -> int:
        if self.k == 1:
            return (a - b) % self.p
        return self.encode(poly_sub(self.decode(a), self.decode(b), self.p))

    def neg(self, a: int) -> int:
        return self.sub(0, a)

    def mul(self, a: int, b: int) -> int:
        if self.k == 1:
            return a * b % self.p
        if self._mul_table is not None:
            return self._mul_table[a * self.q + b]
        prod = poly_mul(self.decode(a), self.decode(b), self.p)
        return self.encode(poly_mod(prod, self.modulus, self.p))

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        if a == 0:
            raise ZeroDivisionError("inverse of zero in GF")
        if self.k == 1:
            return pow(a, self.p - 2, self.p)
        if self._inv_table is not None:
            return self._inv_table[a]
        # a^(q-2) = a^{-1} in GF(q)*.
        return self.pow(a, self.q - 2)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """a**e with e >= 0 (e < 0 routes through inv)."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    # -- internals ------------------------------------------------------------
    def _build_tables(self) -> None:
        q = self.q
        table = [0] * (q * q)
        for a in range(q):
            pa = self.decode(a)
            for b in range(a, q):
                prod = self.encode(
                    poly_mod(poly_mul(pa, self.decode(b), self.p), self.modulus, self.p)
                )
                table[a * q + b] = prod
                table[b * q + a] = prod
        self._mul_table = table
        inv = [0] * q
        for a in range(1, q):
            for b in range(1, q):
                if table[a * q + b] == 1:
                    inv[a] = b
                    break
        self._inv_table = inv

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF({self.q})" if self.k == 1 else f"GF({self.p}^{self.k})"
