"""Seeded synthetic workload generators.

The paper names no datasets — its analysis depends only on cardinality
``v`` and element size ``s`` — so every experiment here runs on seeded
synthetic data shaped like the §1 applications:

- :func:`make_blobs` — Gaussian point clusters for DBSCAN;
- :func:`make_documents` — Zipf-token documents for similarity/co-reference;
- :func:`make_expression_matrix` — gene-expression profiles with planted
  correlated pairs for the mutual-information workload;
- :func:`make_matrix` — dense matrices for the covariance/PCA workload;
- :func:`make_sized_elements` — size-only payloads for capacity
  experiments (Figs 8–9) that never materialize the bytes.

All generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

import numpy as np

from ..mapreduce.serialization import SizedPayload


def make_blobs(
    v: int,
    *,
    dim: int = 2,
    num_clusters: int = 3,
    spread: float = 0.5,
    box: float = 10.0,
    noise_fraction: float = 0.0,
    seed: int = 0,
) -> list[np.ndarray]:
    """Points drawn around ``num_clusters`` Gaussian centres.

    ``noise_fraction`` of the points are replaced by uniform background
    noise (to exercise DBSCAN's noise labelling).  Centres are uniform in
    ``[-box, box]^dim``; cluster points have stddev ``spread``.
    """
    if v < 1:
        raise ValueError(f"v must be >= 1, got {v}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if not 0.0 <= noise_fraction <= 1.0:
        raise ValueError(f"noise_fraction must be in [0, 1], got {noise_fraction}")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-box, box, size=(num_clusters, dim))
    assignments = rng.integers(0, num_clusters, size=v)
    points = centers[assignments] + rng.normal(0.0, spread, size=(v, dim))
    num_noise = int(round(noise_fraction * v))
    if num_noise:
        noise_idx = rng.choice(v, size=num_noise, replace=False)
        points[noise_idx] = rng.uniform(-box * 1.5, box * 1.5, size=(num_noise, dim))
    return [points[i] for i in range(v)]


def make_documents(
    v: int,
    *,
    vocabulary: int = 500,
    length: int = 60,
    zipf_s: float = 1.3,
    num_topics: int = 5,
    topic_strength: float = 0.6,
    seed: int = 0,
) -> list[list[str]]:
    """Token documents with Zipf-distributed words and planted topics.

    Each document draws ``topic_strength`` of its tokens from one topic's
    slice of the vocabulary (making same-topic documents similar) and the
    rest from the global Zipf distribution — giving the similarity
    workloads non-trivial structure.
    """
    if v < 1 or vocabulary < num_topics or length < 1:
        raise ValueError("bad generator parameters")
    rng = np.random.default_rng(seed)
    words = [f"w{idx}" for idx in range(vocabulary)]
    ranks = np.arange(1, vocabulary + 1, dtype=float)
    zipf = 1.0 / ranks**zipf_s
    zipf /= zipf.sum()
    slice_size = vocabulary // num_topics
    docs: list[list[str]] = []
    for _ in range(v):
        topic = int(rng.integers(0, num_topics))
        lo = topic * slice_size
        tokens: list[str] = []
        for _ in range(length):
            if rng.random() < topic_strength:
                tokens.append(words[lo + int(rng.integers(0, slice_size))])
            else:
                tokens.append(words[int(rng.choice(vocabulary, p=zipf))])
        docs.append(tokens)
    return docs


def make_expression_matrix(
    num_genes: int,
    num_samples: int,
    *,
    num_linked_pairs: int = 0,
    link_noise: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """Gene-expression matrix (genes × samples) with planted dependencies.

    ``num_linked_pairs`` gene pairs (2k, 2k+1) are made strongly dependent
    (the second is a noisy copy of the first), so their mutual information
    stands out from the independent background — the signal the relevance
    network should recover.
    """
    if num_genes < 1 or num_samples < 1:
        raise ValueError("need positive dimensions")
    if num_linked_pairs * 2 > num_genes:
        raise ValueError(
            f"{num_linked_pairs} linked pairs need {num_linked_pairs * 2} genes, "
            f"got {num_genes}"
        )
    rng = np.random.default_rng(seed)
    matrix = rng.normal(0.0, 1.0, size=(num_genes, num_samples))
    for pair in range(num_linked_pairs):
        src, dst = 2 * pair, 2 * pair + 1
        matrix[dst] = matrix[src] + rng.normal(0.0, link_noise, size=num_samples)
    return matrix


def make_matrix(
    rows: int, cols: int, *, rank: int | None = None, seed: int = 0
) -> np.ndarray:
    """Dense matrix for the covariance workload; optionally low-rank.

    A known low rank makes PCA's eigenvalue tail collapse — an easy
    correctness signal for the covariance pipeline.
    """
    if rows < 1 or cols < 1:
        raise ValueError("need positive dimensions")
    rng = np.random.default_rng(seed)
    if rank is None:
        return rng.normal(0.0, 1.0, size=(rows, cols))
    if not 1 <= rank <= min(rows, cols):
        raise ValueError(f"rank must be in [1, {min(rows, cols)}], got {rank}")
    left = rng.normal(0.0, 1.0, size=(rows, rank))
    right = rng.normal(0.0, 1.0, size=(rank, cols))
    return left @ right


def make_sized_elements(v: int, size_bytes: int) -> list[SizedPayload]:
    """Size-only payloads for capacity experiments (no real bytes)."""
    if v < 1:
        raise ValueError(f"v must be >= 1, got {v}")
    return [SizedPayload(size_bytes=size_bytes, tag=i) for i in range(v)]


def make_mentions(
    num_entities: int,
    mentions_per_entity: int,
    *,
    context_words: int = 12,
    topic_vocab: int = 30,
    shared_vocab: int = 200,
    noise: float = 0.3,
    seed: int = 0,
):
    """Entity mentions for the co-reference workload.

    Each entity gets a two-token canonical name; its mentions use surface
    variants (full name, "F. Last", last name only) and draw
    ``1 − noise`` of their context from the entity's private topic slice
    and the rest from a shared vocabulary.  Returns
    ``(mentions, truth)`` where ``truth`` maps 1-indexed mention id →
    entity index (the gold chains).
    """
    from ..apps.coreference import Mention

    if num_entities < 1 or mentions_per_entity < 1:
        raise ValueError("need positive entity/mention counts")
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    rng = np.random.default_rng(seed)
    firsts = ["john", "mary", "wei", "anna", "omar", "lena", "ivan", "noor"]
    lasts = [
        "smith", "garcia", "chen", "novak", "haddad", "kim", "okafor",
        "berg", "rossi", "tanaka", "weber", "silva",
    ]
    if num_entities > len(firsts) * len(lasts):
        raise ValueError(f"at most {len(firsts) * len(lasts)} distinct entities")
    name_pool = [(f, l) for l in lasts for f in firsts]
    rng.shuffle(name_pool)

    mentions = []
    truth: dict[int, int] = {}
    mention_id = 1
    for entity in range(num_entities):
        first, last = name_pool[entity]
        variants = [f"{first} {last}", f"{first[0]}. {last}", f"{first} {last}"]
        topic_lo = entity * topic_vocab
        for _ in range(mentions_per_entity):
            surface = variants[int(rng.integers(0, len(variants)))]
            context = []
            for _ in range(context_words):
                if rng.random() < noise:
                    context.append(f"c{int(rng.integers(0, shared_vocab))}")
                else:
                    context.append(f"t{topic_lo + int(rng.integers(0, topic_vocab))}")
            mentions.append(
                Mention(name=surface, context=tuple(context), doc_id=mention_id)
            )
            truth[mention_id] = entity
            mention_id += 1
    return mentions, truth


def make_vectors(v: int, dim: int, *, seed: int = 0) -> list[np.ndarray]:
    """Plain Gaussian vectors (generic numeric payloads)."""
    if v < 1 or dim < 1:
        raise ValueError("need positive dimensions")
    rng = np.random.default_rng(seed)
    data = rng.normal(0.0, 1.0, size=(v, dim))
    return [data[i] for i in range(v)]
