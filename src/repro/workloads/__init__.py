"""Seeded synthetic workload generators for all experiments."""

from .generator import (
    make_blobs,
    make_documents,
    make_expression_matrix,
    make_matrix,
    make_mentions,
    make_sized_elements,
    make_vectors,
)

__all__ = [
    "make_blobs",
    "make_documents",
    "make_expression_matrix",
    "make_matrix",
    "make_mentions",
    "make_sized_elements",
    "make_vectors",
]
