"""Rack-aware topology: the network shape of the paper's EC2-era clusters.

Hadoop 0.20's placement and scheduling are rack-aware: replicas go one
on the writer's node, one on a *different rack*, one elsewhere on that
second rack; task input reads are classified node-local / rack-local /
off-rack, with bandwidth dropping at each level.  This module adds that
structure to the simulator:

- :class:`RackTopology` — nodes grouped into racks, with intra-rack and
  cross-rack bandwidths;
- :func:`rack_aware_placement` — the classic 3-replica policy;
- :func:`read_locality` — classify a (reader, replicas) pair and price
  the read.

It composes with :class:`~repro.mapreduce.hdfs.DistributedFileSystem`
(which handles block splitting) by overriding placements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from .._util import MB


class Locality(Enum):
    """Hadoop's three read-locality levels."""

    NODE_LOCAL = "node-local"
    RACK_LOCAL = "rack-local"
    OFF_RACK = "off-rack"


@dataclass(frozen=True)
class RackTopology:
    """Nodes arranged in equal racks with two-tier bandwidth.

    - ``num_nodes`` total nodes, ``nodes_per_rack`` each (last rack may
      be short);
    - ``intra_rack_bandwidth`` — node ↔ node within a rack (the ToR
      switch), typically ≈ NIC speed;
    - ``cross_rack_bandwidth`` — the oversubscribed core uplink share.
    """

    num_nodes: int
    nodes_per_rack: int = 4
    intra_rack_bandwidth: float = 100 * MB
    cross_rack_bandwidth: float = 25 * MB

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.nodes_per_rack < 1:
            raise ValueError(
                f"nodes_per_rack must be >= 1, got {self.nodes_per_rack}"
            )
        if self.intra_rack_bandwidth <= 0 or self.cross_rack_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def num_racks(self) -> int:
        return -(-self.num_nodes // self.nodes_per_rack)

    def rack_of(self, node: int) -> int:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        return node // self.nodes_per_rack

    def rack_members(self, rack: int) -> list[int]:
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"rack {rack} out of range [0, {self.num_racks})")
        lo = rack * self.nodes_per_rack
        hi = min(lo + self.nodes_per_rack, self.num_nodes)
        return list(range(lo, hi))

    def bandwidth_between(self, a: int, b: int) -> float:
        """Effective bandwidth for a transfer a → b (∞ modelled as intra)."""
        if a == b:
            return float("inf")
        if self.rack_of(a) == self.rack_of(b):
            return self.intra_rack_bandwidth
        return self.cross_rack_bandwidth


def rack_aware_placement(
    topology: RackTopology,
    num_blocks: int,
    *,
    replication: int = 3,
    seed: int = 0,
) -> list[list[int]]:
    """Hadoop's default policy, per block: writer's node, then a node on a
    *different* rack, then a second node on that same remote rack; extra
    replicas spread randomly.  Writers rotate across nodes.

    Returns one replica-node list per block (first entry = primary).
    Degenerates gracefully on single-rack or tiny clusters.
    """
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    rng = random.Random(seed)
    placements: list[list[int]] = []
    for block in range(num_blocks):
        writer = block % topology.num_nodes
        replicas = [writer]
        effective = min(replication, topology.num_nodes)
        if effective >= 2 and topology.num_racks >= 2:
            remote_racks = [
                r for r in range(topology.num_racks) if r != topology.rack_of(writer)
            ]
            remote_rack = remote_racks[block % len(remote_racks)]
            members = topology.rack_members(remote_rack)
            second = members[rng.randrange(len(members))]
            replicas.append(second)
            if effective >= 3:
                others = [n for n in members if n not in replicas]
                if others:
                    replicas.append(others[rng.randrange(len(others))])
        # Fill any remaining replicas from anywhere (or when single-rack).
        while len(replicas) < effective:
            candidate = rng.randrange(topology.num_nodes)
            if candidate not in replicas:
                replicas.append(candidate)
        placements.append(replicas)
    return placements


def read_locality(
    topology: RackTopology, reader: int, replicas: list[int]
) -> Locality:
    """Best locality level the reader can achieve for this block."""
    if not replicas:
        raise ValueError("block has no replicas")
    if reader in replicas:
        return Locality.NODE_LOCAL
    reader_rack = topology.rack_of(reader)
    if any(topology.rack_of(node) == reader_rack for node in replicas):
        return Locality.RACK_LOCAL
    return Locality.OFF_RACK


def read_seconds(
    topology: RackTopology,
    reader: int,
    replicas: list[int],
    num_bytes: int,
    *,
    disk_rate: float = 100 * MB,
) -> float:
    """Time to read one block at the best achievable locality.

    Node-local reads go at disk speed; rack-local at the ToR bandwidth;
    off-rack at the core uplink share (each also bounded by disk).
    """
    if num_bytes < 0:
        raise ValueError(f"bytes must be >= 0, got {num_bytes}")
    level = read_locality(topology, reader, replicas)
    if level is Locality.NODE_LOCAL:
        rate = disk_rate
    elif level is Locality.RACK_LOCAL:
        rate = min(disk_rate, topology.intra_rack_bandwidth)
    else:
        rate = min(disk_rate, topology.cross_rack_bandwidth)
    return num_bytes / rate


def locality_profile(
    topology: RackTopology,
    placements: list[list[int]],
    readers: list[int],
    block_bytes: int,
) -> dict[Locality, int]:
    """Byte totals per locality level for a full read plan."""
    if len(placements) != len(readers):
        raise ValueError(
            f"{len(placements)} blocks but {len(readers)} reader assignments"
        )
    out = {level: 0 for level in Locality}
    for replicas, reader in zip(placements, readers):
        out[read_locality(topology, reader, replicas)] += block_bytes
    return out
