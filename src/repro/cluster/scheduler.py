"""Task placement: greedy LPT scheduling onto node slots.

The paper's balance demand (§5 demand (a)) is about *task* sizes; how well
balanced the *nodes* end up also depends on placement.  Hadoop assigns
tasks to free slots as they come, which for independent tasks approximates
Longest-Processing-Time-first list scheduling.  LPT is what we implement:
sort tasks by descending cost, always give the next task to the least
loaded slot.  (Classical bound: makespan ≤ 4/3 · OPT.)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Collection, Sequence

from .node import ClusterSpec


def _usable_slots(
    cluster: ClusterSpec, blacklist: Collection[int]
) -> list[tuple[int, int]]:
    """All (node, slot) pairs on non-blacklisted nodes.

    ``blacklist`` holds node indexes excluded from placement — Hadoop's
    TaskTracker blacklisting, where a node with repeated task failures
    stops receiving work.  Scheduling with every node blacklisted is a
    configuration error, not an empty schedule.
    """
    excluded = set(blacklist)
    for index in excluded:
        if not 0 <= index < cluster.num_nodes:
            raise ValueError(
                f"blacklisted node {index} outside cluster of {cluster.num_nodes}"
            )
    slots = [
        (node_index, slot_index)
        for node_index, node in enumerate(cluster.nodes)
        if node_index not in excluded
        for slot_index in range(node.slots)
    ]
    if not slots:
        raise ValueError("every node is blacklisted; nothing can be scheduled")
    return slots


@dataclass(frozen=True)
class TaskCost:
    """One schedulable task: an id and its estimated running time."""

    task_id: int
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"task cost must be non-negative, got {self.seconds}")


@dataclass
class Assignment:
    """Result of scheduling: per-slot loads and task placements."""

    #: task_id -> (node index, slot index within node)
    placement: dict[int, tuple[int, int]]
    #: busy seconds per (node, slot)
    slot_loads: dict[tuple[int, int], float]

    @property
    def makespan(self) -> float:
        """Completion time of the last slot (0 when nothing was scheduled)."""
        return max(self.slot_loads.values(), default=0.0)

    def node_loads(self) -> dict[int, float]:
        """Max busy time over each node's slots."""
        loads: dict[int, float] = {}
        for (node, _slot), seconds in self.slot_loads.items():
            loads[node] = max(loads.get(node, 0.0), seconds)
        return loads

    @property
    def imbalance(self) -> float:
        """makespan / mean slot load — 1.0 is perfectly even."""
        if not self.slot_loads:
            return 1.0
        mean_load = sum(self.slot_loads.values()) / len(self.slot_loads)
        return self.makespan / mean_load if mean_load > 0 else 1.0


def schedule_lpt(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    blacklist: Collection[int] = (),
) -> Assignment:
    """Longest-Processing-Time-first list scheduling over all cluster slots.

    ``blacklist`` excludes whole nodes from placement (TaskTracker
    blacklisting); their slots receive no tasks and report no load.
    """
    slots = _usable_slots(cluster, blacklist)
    # Heap of (current load, tiebreak, slot); tiebreak keeps determinism.
    heap: list[tuple[float, int, tuple[int, int]]] = [
        (0.0, i, slot) for i, slot in enumerate(slots)
    ]
    heapq.heapify(heap)
    placement: dict[int, tuple[int, int]] = {}
    ordered = sorted(tasks, key=lambda t: (-t.seconds, t.task_id))
    for task in ordered:
        load, tiebreak, slot = heapq.heappop(heap)
        placement[task.task_id] = slot
        heapq.heappush(heap, (load + task.seconds, tiebreak, slot))
    slot_loads = {slot: 0.0 for slot in slots}
    for task in tasks:
        slot_loads[placement[task.task_id]] += task.seconds
    return Assignment(placement=placement, slot_loads=slot_loads)


def schedule_lpt_heterogeneous(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    blacklist: Collection[int] = (),
) -> Assignment:
    """LPT for clusters whose nodes differ in speed (uniform machines).

    Task costs are given in *reference seconds* (the first node's speed);
    a slot on a node with ``eval_rate`` r runs a task in
    ``seconds · rate₀ / r``.  Each task goes to the slot that would
    *finish it earliest* — the classic MET/LPT heuristic for uniformly
    related machines.  ``blacklist`` excludes whole nodes, as in
    :func:`schedule_lpt`.
    """
    rate0 = cluster.nodes[0].eval_rate
    slot_speed: dict[tuple[int, int], float] = {}
    for node_index, slot_index in _usable_slots(cluster, blacklist):
        node = cluster.nodes[node_index]
        slot_speed[(node_index, slot_index)] = node.eval_rate / rate0

    loads: dict[tuple[int, int], float] = {slot: 0.0 for slot in slot_speed}
    placement: dict[int, tuple[int, int]] = {}
    for task in sorted(tasks, key=lambda t: (-t.seconds, t.task_id)):
        best_slot = min(
            loads,
            key=lambda slot: (loads[slot] + task.seconds / slot_speed[slot], slot),
        )
        placement[task.task_id] = best_slot
        loads[best_slot] += task.seconds / slot_speed[best_slot]
    return Assignment(placement=placement, slot_loads=loads)


def schedule_round_robin(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    blacklist: Collection[int] = (),
) -> Assignment:
    """Naive round-robin placement — the baseline LPT is compared against."""
    slots = _usable_slots(cluster, blacklist)
    placement: dict[int, tuple[int, int]] = {}
    slot_loads = {slot: 0.0 for slot in slots}
    for position, task in enumerate(sorted(tasks, key=lambda t: t.task_id)):
        slot = slots[position % len(slots)]
        placement[task.task_id] = slot
        slot_loads[slot] += task.seconds
    return Assignment(placement=placement, slot_loads=slot_loads)
