"""Task placement: cluster-facing wrappers over the control-plane policies.

The paper's balance demand (§5 demand (a)) is about *task* sizes; how well
balanced the *nodes* end up also depends on placement.  Hadoop assigns
tasks to free slots as they come, which for independent tasks approximates
Longest-Processing-Time-first list scheduling.  (Classical bound:
makespan ≤ 4/3 · OPT.)

The algorithms themselves live in
:mod:`repro.mapreduce.controlplane.policy` so the real engines and the
simulator share one implementation; this module keeps the historical
``schedule_*`` entry points (and re-exports :class:`TaskCost` /
:class:`Assignment`) and handles the cluster-model concerns the policies
don't know about: expanding a :class:`~repro.cluster.node.ClusterSpec`
into slots and validating the node blacklist.
"""

from __future__ import annotations

from typing import Collection, Sequence

from ..mapreduce.controlplane.policy import (
    Assignment,
    LptPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    Slot,
    TaskCost,
)
from .node import ClusterSpec

__all__ = [
    "Assignment",
    "TaskCost",
    "cluster_slots",
    "schedule_lpt",
    "schedule_lpt_heterogeneous",
    "schedule_round_robin",
]


def cluster_slots(
    cluster: ClusterSpec,
    blacklist: Collection[int] = (),
    *,
    speed_aware: bool = False,
) -> list[Slot]:
    """All usable slots on non-blacklisted nodes, as policy :class:`Slot`\\ s.

    ``blacklist`` holds node indexes excluded from placement — Hadoop's
    TaskTracker blacklisting, where a node with repeated task failures
    stops receiving work.  Scheduling with every node blacklisted is a
    configuration error, not an empty schedule.

    With ``speed_aware`` each slot carries its node's speed relative to
    the first node (``eval_rate / rate₀``); otherwise every slot reports
    speed 1.0, which keeps :func:`schedule_lpt` deliberately speed-blind.
    """
    excluded = set(blacklist)
    for index in excluded:
        if not 0 <= index < cluster.num_nodes:
            raise ValueError(
                f"blacklisted node {index} outside cluster of {cluster.num_nodes}"
            )
    rate0 = cluster.nodes[0].eval_rate
    slots = [
        Slot(
            node=node_index,
            index=slot_index,
            speed=(node.eval_rate / rate0) if speed_aware else 1.0,
        )
        for node_index, node in enumerate(cluster.nodes)
        if node_index not in excluded
        for slot_index in range(node.slots)
    ]
    if not slots:
        raise ValueError("every node is blacklisted; nothing can be scheduled")
    return slots


def schedule_lpt(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    blacklist: Collection[int] = (),
) -> Assignment:
    """Longest-Processing-Time-first list scheduling over all cluster slots.

    Deliberately speed-blind: every slot is treated as equally fast, so
    homogeneous-cluster results don't depend on node metadata.
    ``blacklist`` excludes whole nodes from placement (TaskTracker
    blacklisting); their slots receive no tasks and report no load.
    """
    return LptPolicy().assign(tasks, cluster_slots(cluster, blacklist))


def schedule_lpt_heterogeneous(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    blacklist: Collection[int] = (),
) -> Assignment:
    """LPT for clusters whose nodes differ in speed (uniform machines).

    Task costs are given in *reference seconds* (the first node's speed);
    a slot on a node with ``eval_rate`` r runs a task in
    ``seconds · rate₀ / r``.  Each task goes to the slot that would
    *finish it earliest* — the classic MET/LPT heuristic for uniformly
    related machines.  ``blacklist`` excludes whole nodes, as in
    :func:`schedule_lpt`.
    """
    slots = cluster_slots(cluster, blacklist, speed_aware=True)
    if all(slot.speed == 1.0 for slot in slots):
        # Uniform speeds: take the EFT path anyway so reported slot loads
        # stay in wall-clock seconds, exactly as before the refactor.
        return SchedulingPolicy.assign(LptPolicy(), tasks, slots)
    return LptPolicy().assign(tasks, slots)


def schedule_round_robin(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    blacklist: Collection[int] = (),
) -> Assignment:
    """Naive round-robin placement — the baseline LPT is compared against."""
    return RoundRobinPolicy().assign(tasks, cluster_slots(cluster, blacklist))
