"""Discrete cluster simulator: runs a scheme's task graph on modelled nodes.

This is the substitute for the paper's AWS-EC2 / Google-IBM cloud runs
(§6).  Given a distribution scheme, an element size, and a cluster, it

1. profiles every task (members, evaluations) via the schemes' O(1)
   closed forms,
2. estimates per-task time = shuffle-in + compute + write-out under the
   node and network models,
3. schedules tasks onto slots (LPT, like Hadoop's greedy slot filling),
4. measures the paper's §6 quantities: replication factor, working-set
   sizes (with the runtime memory overhead that made the paper hit maxws
   "a little earlier than expected"), intermediate storage, makespan,

and reports limit violations against maxws/maxis.  Hierarchical schedules
simulate round by round (sequential rounds, parallel tasks within).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Sequence

from ..core.hierarchical import Schedule
from ..core.scheme import DistributionScheme, TaskProfile
from .metrics import MeasuredMetrics, TheoryComparison
from .network import NetworkModel
from .node import ClusterSpec, FailureModel, NodeSpec
from ..mapreduce.controlplane.policy import SchedulingPolicy, resolve_policy
from .scheduler import (
    Assignment,
    TaskCost,
    cluster_slots,
    schedule_lpt,
    schedule_lpt_heterogeneous,
)


@dataclass(frozen=True)
class LimitCheck:
    """Outcome of checking one environment limit."""

    name: str
    limit: int
    observed: int
    ok: bool

    def format(self) -> str:
        state = "ok" if self.ok else "VIOLATED"
        return f"{self.name}: observed {self.observed} vs limit {self.limit} [{state}]"


@dataclass
class SimulationReport:
    """Everything one simulated run produced."""

    measured: MeasuredMetrics
    assignment: Assignment
    limit_checks: list[LimitCheck] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return all(check.ok for check in self.limit_checks)

    def compare(self, theory) -> TheoryComparison:
        return TheoryComparison(theory=theory, measured=self.measured)


@dataclass(frozen=True)
class FixedOverhead:
    """Constant per-task memory overhead in bytes (framework buffers)."""

    bytes: int = 0

    def apply(self, working_set_bytes: int) -> int:
        return working_set_bytes + self.bytes


class ClusterSimulator:
    """Simulate pairwise-computation runs on a modelled cluster.

    Parameters
    ----------
    cluster:
        Node specs (slot memory = the paper's maxws, plus overhead model).
    network:
        α–β network model for shuffle and broadcast timing.
    maxis:
        Intermediate-storage limit in bytes (cluster-wide), the paper's
        maxis.  ``None`` disables that check.
    task_overhead_bytes:
        Fixed per-task memory beyond the working set — the "other
        variables and data [that] need to be kept in memory" of §6.
    failure_model:
        Optional :class:`~repro.cluster.node.FailureModel`; when set,
        every ``simulate*`` also reports a failure-adjusted makespan in
        which each task carries its expected re-execution cost (wasted
        partial runs plus re-fetching its working set over the network).
    blacklist:
        Node indexes excluded from scheduling (TaskTracker blacklisting);
        the remaining nodes absorb the full task load.
    scheduling_policy:
        A :class:`~repro.mapreduce.controlplane.policy.SchedulingPolicy`
        instance or registry name (``"fifo"``, ``"lpt"``,
        ``"round_robin"``) used to place task costs onto slots — the same
        policy objects the real engines accept.  ``None`` (default) keeps
        the historical behaviour: speed-blind LPT on homogeneous
        clusters, earliest-finish-time LPT when node speeds differ.
    shuffle_plane:
        How intermediate data moves between phases.  ``"direct"``
        (default) models reducers fetching map output straight from the
        producing nodes — the per-task transfer term already covers it.
        ``"relay"`` models the legacy driver-relay plane: the whole
        shuffle volume is funnelled twice through a single driver link
        (:meth:`~repro.cluster.network.NetworkModel.relay_shuffle_time`),
        a serialized term added to the makespan and reported as
        ``driver_bytes``/``relay_seconds`` in the measured metrics.
    """

    SHUFFLE_PLANES = ("direct", "relay")

    def __init__(
        self,
        cluster: ClusterSpec,
        network: NetworkModel | None = None,
        *,
        maxis: int | None = None,
        task_overhead_bytes: int = 0,
        failure_model: FailureModel | None = None,
        blacklist: Collection[int] = (),
        shuffle_plane: str = "direct",
        scheduling_policy: SchedulingPolicy | str | None = None,
    ):
        self.cluster = cluster
        self.network = network or NetworkModel()
        self.maxis = maxis
        if shuffle_plane not in self.SHUFFLE_PLANES:
            raise ValueError(
                f"shuffle_plane must be one of {self.SHUFFLE_PLANES}, "
                f"got {shuffle_plane!r}"
            )
        self.shuffle_plane = shuffle_plane
        if task_overhead_bytes < 0:
            raise ValueError(
                f"task_overhead_bytes must be >= 0, got {task_overhead_bytes}"
            )
        self.task_overhead = FixedOverhead(task_overhead_bytes)
        self.failure_model = failure_model
        self.blacklist = frozenset(blacklist)
        # Mixed node speeds need the speed-aware scheduler.
        rates = {node.eval_rate for node in cluster.nodes}
        self._heterogeneous = len(rates) > 1
        self.scheduling_policy = (
            None if scheduling_policy is None else resolve_policy(scheduling_policy)
        )

    def _place(self, costs: Sequence[TaskCost]) -> Assignment:
        """Schedule costs on the cluster, honouring blacklist and policy."""
        if self.scheduling_policy is not None:
            slots = cluster_slots(
                self.cluster, self.blacklist, speed_aware=self._heterogeneous
            )
            return self.scheduling_policy.assign(costs, slots)
        schedule = schedule_lpt_heterogeneous if self._heterogeneous else schedule_lpt
        return schedule(costs, self.cluster, blacklist=self.blacklist)

    def _relay_cost(self, shuffle_bytes: int) -> tuple[int, float]:
        """(driver bytes, serialized driver seconds) for one shuffle leg."""
        if self.shuffle_plane != "relay" or shuffle_bytes <= 0:
            return 0, 0.0
        return shuffle_bytes, self.network.relay_shuffle_time(
            shuffle_bytes, self.cluster.num_nodes
        )

    def _failure_impact(
        self,
        costs: Sequence[TaskCost],
        refetch_seconds: Sequence[float],
        base_makespan: float,
    ) -> tuple[float, float]:
        """(failure-adjusted makespan, expected re-executions) for a batch.

        Each task's cost is inflated to its expected completion time under
        the failure model — re-running LPT on the inflated costs, since a
        failure-heavy schedule can balance differently — and the expected
        number of failed runs is summed across tasks.  Without a failure
        model this is the identity: (``base_makespan``, 0).
        """
        if self.failure_model is None or not costs:
            return base_makespan, 0.0
        adjusted = [
            TaskCost(
                cost.task_id,
                self.failure_model.expected_task_seconds(cost.seconds, refetch),
            )
            for cost, refetch in zip(costs, refetch_seconds)
        ]
        reexecutions = sum(
            self.failure_model.expected_reexecutions(cost.seconds) for cost in costs
        )
        return self._place(adjusted).makespan, reexecutions

    # -- per-task cost model ----------------------------------------------------
    def _task_seconds(
        self, profile: TaskProfile, element_size: int, eval_seconds: float, node: NodeSpec
    ) -> float:
        """Shuffle-in + compute + write-out time of one task on one slot."""
        in_bytes = profile.num_members * element_size
        out_bytes = in_bytes  # copies go back out, results are small (§3)
        transfer = self.network.transfer_time(in_bytes)
        io = (in_bytes + out_bytes) / node.io_rate
        compute = profile.num_evaluations * eval_seconds
        return transfer + io + compute

    # -- flat schemes -------------------------------------------------------------
    def simulate(
        self,
        scheme: DistributionScheme,
        element_size: int,
        *,
        eval_seconds: float | None = None,
    ) -> SimulationReport:
        """Run one flat scheme; returns measured metrics + limit checks."""
        if element_size < 1:
            raise ValueError(f"element_size must be >= 1, got {element_size}")
        node = self.cluster.nodes[0]
        if eval_seconds is None:
            eval_seconds = 1.0 / node.eval_rate

        profiles = [scheme.task_profile(t) for t in range(scheme.num_tasks)]
        replicas = sum(p.num_members for p in profiles)
        total_evals = sum(p.num_evaluations for p in profiles)
        max_ws_elems = max(p.num_members for p in profiles)
        max_ws_bytes = max_ws_elems * element_size
        max_task_memory = self.task_overhead.apply(max_ws_bytes)
        intermediate = replicas * element_size

        costs = [
            TaskCost(p.subset_id, self._task_seconds(p, element_size, eval_seconds, node))
            for p in profiles
        ]
        assignment = self._place(costs)
        # Recovery re-ships exactly the task's working set — the quantity
        # the scheme's replication choice controls.
        refetch = [
            self.network.transfer_time(p.num_members * element_size) for p in profiles
        ]
        adjusted, reexecutions = self._failure_impact(
            costs, refetch, assignment.makespan
        )
        driver_bytes, relay_seconds = self._relay_cost(intermediate)

        measured = MeasuredMetrics(
            scheme=scheme.name,
            v=scheme.v,
            num_tasks=scheme.num_tasks,
            replicas=replicas,
            replication_factor=replicas / scheme.v,
            max_working_set_elements=max_ws_elems,
            max_working_set_bytes=max_ws_bytes,
            max_task_memory_bytes=max_task_memory,
            intermediate_bytes=intermediate,
            total_evaluations=total_evals,
            max_evaluations_per_task=max(p.num_evaluations for p in profiles),
            makespan_seconds=assignment.makespan + relay_seconds,
            makespan_failure_adjusted=adjusted + relay_seconds,
            expected_reexecutions=reexecutions,
            recovery_overhead_seconds=adjusted - assignment.makespan,
            shuffle_plane=self.shuffle_plane,
            driver_bytes=driver_bytes,
            relay_seconds=relay_seconds,
        )
        return SimulationReport(
            measured=measured,
            assignment=assignment,
            limit_checks=self._limits(max_task_memory, intermediate),
        )

    # -- the broadcast one-job form (§5.1) -------------------------------------------
    def simulate_broadcast_one_job(
        self,
        scheme,
        element_size: int,
        *,
        eval_seconds: float | None = None,
        result_bytes: int = 16,
    ) -> SimulationReport:
        """Simulate the distributed-cache one-job broadcast variant.

        Differences from the generic two-job path: the dataset is
        *broadcast once per node* (pipelined tree) instead of shuffled
        per task, and the only shuffled records are the 16-byte pair
        results (§3's id+value) — so intermediate storage is the cached
        dataset per node plus the result stream, not element replicas.
        """
        from ..core.broadcast import BroadcastScheme

        if not isinstance(scheme, BroadcastScheme):
            raise TypeError(
                "one-job simulation requires a BroadcastScheme, got "
                f"{type(scheme).__name__}"
            )
        if element_size < 1:
            raise ValueError(f"element_size must be >= 1, got {element_size}")
        node = self.cluster.nodes[0]
        if eval_seconds is None:
            eval_seconds = 1.0 / node.eval_rate

        dataset_bytes = scheme.v * element_size
        broadcast_time = self.network.broadcast_time(
            dataset_bytes, self.cluster.num_nodes
        )

        profiles = [scheme.task_profile(t) for t in range(scheme.num_tasks)]
        costs = []
        for p in profiles:
            # The cache read is local; per task: compute + emit results.
            out_bytes = 2 * p.num_evaluations * result_bytes
            seconds = p.num_evaluations * eval_seconds + out_bytes / node.io_rate
            costs.append(TaskCost(p.subset_id, seconds))
        assignment = self._place(costs)
        # A recovered broadcast task must re-localize the *whole* cached
        # dataset on its replacement node — broadcast's recovery downside.
        refetch = [self.network.transfer_time(dataset_bytes)] * len(costs)
        adjusted, reexecutions = self._failure_impact(
            costs, refetch, assignment.makespan
        )

        total_evals = sum(p.num_evaluations for p in profiles)
        # Every node caches the dataset once; results add 2 records/eval.
        intermediate = (
            dataset_bytes * self.cluster.num_nodes
            + 2 * total_evals * result_bytes
        )
        max_task_memory = self.task_overhead.apply(dataset_bytes)
        measured = MeasuredMetrics(
            scheme=f"{scheme.name}(one-job)",
            v=scheme.v,
            num_tasks=scheme.num_tasks,
            replicas=scheme.v * self.cluster.num_nodes,
            replication_factor=float(self.cluster.num_nodes),
            max_working_set_elements=scheme.v,
            max_working_set_bytes=dataset_bytes,
            max_task_memory_bytes=max_task_memory,
            intermediate_bytes=intermediate,
            total_evaluations=total_evals,
            max_evaluations_per_task=max(p.num_evaluations for p in profiles),
            makespan_seconds=broadcast_time + assignment.makespan,
            makespan_failure_adjusted=broadcast_time + adjusted,
            expected_reexecutions=reexecutions,
            recovery_overhead_seconds=adjusted - assignment.makespan,
        )
        return SimulationReport(
            measured=measured,
            assignment=assignment,
            limit_checks=self._limits(max_task_memory, intermediate),
        )

    # -- hierarchical schedules ----------------------------------------------------
    def simulate_schedule(
        self,
        schedule: Schedule,
        element_size: int,
        *,
        eval_seconds: float | None = None,
    ) -> SimulationReport:
        """Simulate sequential rounds; makespan = Σ per-round makespans.

        Intermediate storage is the *peak round's* replicas — the §7
        easing — and working-set checks apply per fine-grained task.
        """
        if element_size < 1:
            raise ValueError(f"element_size must be >= 1, got {element_size}")
        node = self.cluster.nodes[0]
        if eval_seconds is None:
            eval_seconds = 1.0 / node.eval_rate

        total_makespan = 0.0
        total_adjusted = 0.0
        total_reexecutions = 0.0
        total_replicas = 0
        total_driver_bytes = 0
        total_relay_seconds = 0.0
        peak_round_bytes = 0
        max_ws_elems = 0
        total_evals = 0
        max_task_evals = 0
        num_tasks = 0
        merged_loads: dict[tuple[int, int], float] = {}
        last_assignment: Assignment | None = None

        for round_ in schedule.rounds():
            costs = []
            refetch = []
            for task in round_.tasks:
                profile = TaskProfile(
                    subset_id=task.task_index,
                    num_members=len(task.members),
                    num_evaluations=len(task.pairs),
                )
                costs.append(
                    TaskCost(
                        task.task_index,
                        self._task_seconds(profile, element_size, eval_seconds, node),
                    )
                )
                refetch.append(
                    self.network.transfer_time(profile.num_members * element_size)
                )
                max_ws_elems = max(max_ws_elems, profile.num_members)
                total_evals += profile.num_evaluations
                max_task_evals = max(max_task_evals, profile.num_evaluations)
            assignment = self._place(costs)
            adjusted, reexecutions = self._failure_impact(
                costs, refetch, assignment.makespan
            )
            last_assignment = assignment
            for slot, load in assignment.slot_loads.items():
                merged_loads[slot] = merged_loads.get(slot, 0.0) + load
            round_driver, round_relay = self._relay_cost(
                round_.replicas * element_size
            )
            total_driver_bytes += round_driver
            total_relay_seconds += round_relay
            total_makespan += assignment.makespan + round_relay
            total_adjusted += adjusted + round_relay
            total_reexecutions += reexecutions
            total_replicas += round_.replicas
            peak_round_bytes = max(peak_round_bytes, round_.replicas * element_size)
            num_tasks += len(round_.tasks)

        max_ws_bytes = max_ws_elems * element_size
        max_task_memory = self.task_overhead.apply(max_ws_bytes)
        measured = MeasuredMetrics(
            scheme=type(schedule).__name__,
            v=schedule.v,
            num_tasks=num_tasks,
            replicas=total_replicas,
            replication_factor=total_replicas / schedule.v,
            max_working_set_elements=max_ws_elems,
            max_working_set_bytes=max_ws_bytes,
            max_task_memory_bytes=max_task_memory,
            intermediate_bytes=peak_round_bytes,
            total_evaluations=total_evals,
            max_evaluations_per_task=max_task_evals,
            makespan_seconds=total_makespan,
            makespan_failure_adjusted=total_adjusted,
            expected_reexecutions=total_reexecutions,
            recovery_overhead_seconds=total_adjusted - total_makespan,
            shuffle_plane=self.shuffle_plane,
            driver_bytes=total_driver_bytes,
            relay_seconds=total_relay_seconds,
        )
        assignment = last_assignment or Assignment(placement={}, slot_loads={})
        assignment = Assignment(placement=assignment.placement, slot_loads=merged_loads)
        return SimulationReport(
            measured=measured,
            assignment=assignment,
            limit_checks=self._limits(max_task_memory, peak_round_bytes),
        )

    # -- input locality (§3's "most of the input data can be read locally") ---------
    def input_locality(
        self,
        dataset_bytes: int,
        *,
        dfs_block_size: int | None = None,
        dfs_replication: int = 3,
        num_map_tasks: int | None = None,
        seed: int = 0,
    ) -> dict[str, float]:
        """Estimate the local-read fraction of the distribution job's input.

        Places the dataset on a modelled DFS (block placement with
        replication) and assigns map tasks round-robin over nodes, as the
        engine's split planner would; returns the local/remote byte split
        and the resulting read-time estimate.  Backs the paper's §5.4
        assumption that network costs are dominated by *intermediate*
        data, input being mostly local.
        """
        from ..mapreduce.hdfs import DistributedFileSystem

        if dataset_bytes < 1:
            raise ValueError(f"dataset_bytes must be >= 1, got {dataset_bytes}")
        num_nodes = self.cluster.num_nodes
        if num_map_tasks is None:
            num_map_tasks = self.cluster.total_slots
        kwargs = {"replication": dfs_replication, "seed": seed}
        if dfs_block_size is not None:
            kwargs["block_size"] = dfs_block_size
        dfs = DistributedFileSystem(num_nodes, **kwargs)
        entry = dfs.create("dataset", dataset_bytes)

        local = remote = 0
        total_blocks = max(1, entry.num_blocks)
        for block_index, replicas in enumerate(entry.placements):
            # Map tasks read *contiguous* block ranges (file splits); the
            # task owning this block runs on a round-robin node.
            task = block_index * num_map_tasks // total_blocks
            reader = task % num_nodes
            size = dfs.block_size_of("dataset", block_index)
            if reader in replicas:
                local += size
            else:
                remote += size
        node = self.cluster.nodes[0]
        read_seconds = local / node.io_rate + (
            self.network.transfer_time(remote) if remote else 0.0
        )
        total = local + remote
        return {
            "local_bytes": float(local),
            "remote_bytes": float(remote),
            "local_fraction": local / total if total else 1.0,
            "read_seconds": read_seconds,
        }

    # -- limits ---------------------------------------------------------------------
    def _limits(self, max_task_memory: int, intermediate: int) -> list[LimitCheck]:
        checks = [
            LimitCheck(
                name="maxws (slot memory)",
                limit=self.cluster.min_slot_memory,
                observed=max_task_memory,
                ok=max_task_memory <= self.cluster.min_slot_memory,
            )
        ]
        if self.maxis is not None:
            checks.append(
                LimitCheck(
                    name="maxis (intermediate storage)",
                    limit=self.maxis,
                    observed=intermediate,
                    ok=intermediate <= self.maxis,
                )
            )
        return checks
