"""Execution traces: per-task timelines from a scheduled assignment.

The simulator's :class:`~repro.cluster.scheduler.Assignment` says *where*
each task runs and how loaded each slot is; a :class:`Trace` adds *when*:
tasks on one slot run back-to-back in scheduling order, giving every task
a (start, end) interval.  Traces support

- JSON export (one event per task — loadable into external tooling),
- an ASCII Gantt chart for quick terminal inspection,
- utilization statistics (busy fraction per slot, cluster-wide).

This is the observability layer the §6 evaluation would have read off the
Hadoop JobTracker UI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

from .node import ClusterSpec
from .scheduler import TaskCost


@dataclass(frozen=True)
class TaskSpan:
    """One task's placement and time interval."""

    task_id: int
    node: int
    slot: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """A full schedule timeline."""

    spans: list[TaskSpan]

    @property
    def makespan(self) -> float:
        return max((span.end for span in self.spans), default=0.0)

    def spans_on(self, node: int, slot: int | None = None) -> list[TaskSpan]:
        out = [
            span
            for span in self.spans
            if span.node == node and (slot is None or span.slot == slot)
        ]
        return sorted(out, key=lambda s: s.start)

    def utilization(self) -> dict[tuple[int, int], float]:
        """Busy fraction of each slot over the makespan."""
        total = self.makespan
        if total == 0:
            return {}
        busy: dict[tuple[int, int], float] = {}
        for span in self.spans:
            key = (span.node, span.slot)
            busy[key] = busy.get(key, 0.0) + span.duration
        return {key: value / total for key, value in busy.items()}

    def mean_utilization(self) -> float:
        values = list(self.utilization().values())
        return sum(values) / len(values) if values else 0.0

    # -- export ---------------------------------------------------------------
    def to_json(self) -> str:
        """One JSON object per task (Chrome-trace-adjacent layout)."""
        events = [
            {
                "task": span.task_id,
                "node": span.node,
                "slot": span.slot,
                "start": span.start,
                "end": span.end,
            }
            for span in sorted(self.spans, key=lambda s: (s.node, s.slot, s.start))
        ]
        return json.dumps(events, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        events = json.loads(text)
        return cls(
            spans=[
                TaskSpan(
                    task_id=e["task"], node=e["node"], slot=e["slot"],
                    start=e["start"], end=e["end"],
                )
                for e in events
            ]
        )

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt: one row per slot, task ids mod 10 as fill digits."""
        if not self.spans:
            return "(empty trace)"
        if width < 10:
            raise ValueError(f"gantt needs width >= 10, got {width}")
        total = self.makespan
        slots = sorted({(span.node, span.slot) for span in self.spans})
        lines = [f"0{' ' * (width - len(str(round(total, 1))) - 1)}{round(total, 1)}s"]
        for node, slot in slots:
            row = [" "] * width
            for span in self.spans_on(node, slot):
                lo = int(span.start / total * (width - 1))
                hi = max(lo + 1, int(span.end / total * (width - 1)))
                digit = str(span.task_id % 10)
                for col in range(lo, min(hi, width)):
                    row[col] = digit
            lines.append(f"n{node}.s{slot} |{''.join(row)}|")
        return "\n".join(lines)


def build_trace(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    scheduler=None,
) -> Trace:
    """Schedule tasks (LPT by default) and derive their timeline.

    Tasks placed on the same slot start in descending-cost order (the
    order LPT assigned them), each beginning when its predecessor ends.
    """
    from .scheduler import schedule_lpt

    schedule = scheduler or schedule_lpt
    assignment = schedule(tasks, cluster)
    cost_of = {task.task_id: task.seconds for task in tasks}
    # Reconstruct per-slot execution order: LPT assigns longest first.
    per_slot: dict[tuple[int, int], list[int]] = {}
    for task in sorted(tasks, key=lambda t: (-t.seconds, t.task_id)):
        per_slot.setdefault(assignment.placement[task.task_id], []).append(
            task.task_id
        )
    spans = []
    for slot, task_ids in per_slot.items():
        clock = 0.0
        for task_id in task_ids:
            duration = cost_of[task_id]
            spans.append(
                TaskSpan(
                    task_id=task_id, node=slot[0], slot=slot[1],
                    start=clock, end=clock + duration,
                )
            )
            clock += duration
    return Trace(spans=spans)
