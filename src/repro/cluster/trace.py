"""Execution traces: per-task timelines from a scheduled assignment.

The simulator's :class:`~repro.cluster.scheduler.Assignment` says *where*
each task runs and how loaded each slot is; a :class:`Trace` adds *when*:
tasks on one slot run back-to-back in scheduling order, giving every task
a (start, end) interval.  Traces support

- JSON export (loadable into external tooling) and loading from the
  legacy span-array format, the current ``{"slots", "spans"}`` document,
  a single span object, or the JSONL files a real engine run's
  :class:`~repro.mapreduce.controlplane.events.JsonlTraceSink` writes,
- an ASCII Gantt chart for quick terminal inspection,
- utilization statistics (busy fraction per slot, cluster-wide).

A trace carries its *slot inventory* explicitly: utilization and the
Gantt chart cover idle slots too, and an empty trace round-trips through
JSON without forgetting which slots existed.

This is the observability layer the §6 evaluation would have read off the
Hadoop JobTracker UI — and, via the engine's event bus, what real local
runs now emit as well.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from .node import ClusterSpec
from .scheduler import TaskCost

#: Keys every span record carries, in every supported serialization.
_SPAN_KEYS = frozenset({"task", "node", "slot", "start", "end"})


@dataclass(frozen=True)
class TaskSpan:
    """One task's placement and time interval."""

    task_id: int
    node: int
    slot: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _span_from_dict(record: dict) -> TaskSpan:
    return TaskSpan(
        task_id=record["task"], node=record["node"], slot=record["slot"],
        start=record["start"], end=record["end"],
    )


@dataclass
class Trace:
    """A full schedule timeline.

    ``slots`` is the slot inventory — every ``(node, slot)`` pair that
    *could* have run tasks.  It defaults to the slots the spans mention,
    but passing it explicitly keeps idle slots visible in utilization
    and the Gantt chart, and survives JSON round-trips even when there
    are no spans at all.
    """

    spans: list[TaskSpan]
    slots: list[tuple[int, int]] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        inventory = {(span.node, span.slot) for span in self.spans}
        if self.slots is not None:
            inventory.update(tuple(slot) for slot in self.slots)
        self.slots = sorted(inventory)

    @property
    def makespan(self) -> float:
        return max((span.end for span in self.spans), default=0.0)

    def spans_on(self, node: int, slot: int | None = None) -> list[TaskSpan]:
        out = [
            span
            for span in self.spans
            if span.node == node and (slot is None or span.slot == slot)
        ]
        return sorted(out, key=lambda s: s.start)

    def utilization(self) -> dict[tuple[int, int], float]:
        """Busy fraction of each inventoried slot over the makespan."""
        total = self.makespan
        if total == 0:
            return {slot: 0.0 for slot in self.slots}
        busy = {slot: 0.0 for slot in self.slots}
        for span in self.spans:
            busy[(span.node, span.slot)] += span.duration
        return {key: value / total for key, value in busy.items()}

    def mean_utilization(self) -> float:
        values = list(self.utilization().values())
        return sum(values) / len(values) if values else 0.0

    # -- export ---------------------------------------------------------------
    def to_json(self) -> str:
        """A ``{"slots", "spans"}`` document (Chrome-trace-adjacent spans)."""
        spans = [
            {
                "task": span.task_id,
                "node": span.node,
                "slot": span.slot,
                "start": span.start,
                "end": span.end,
            }
            for span in sorted(self.spans, key=lambda s: (s.node, s.slot, s.start))
        ]
        return json.dumps(
            {"slots": [list(slot) for slot in self.slots], "spans": spans},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Load a trace from any of the formats we have ever written.

        Accepted inputs: the current ``{"slots", "spans"}`` document, the
        legacy bare span array, a single span object, and JSONL — one
        JSON object per line, as written by
        :class:`~repro.mapreduce.controlplane.events.JsonlTraceSink` —
        where span-shaped lines become spans and typed event lines are
        skipped.
        """
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            return cls._from_jsonl(text)
        if isinstance(document, list):  # legacy span array
            return cls(spans=[_span_from_dict(record) for record in document])
        if isinstance(document, dict):
            if "spans" in document:
                return cls(
                    spans=[_span_from_dict(r) for r in document["spans"]],
                    slots=[tuple(slot) for slot in document.get("slots", [])],
                )
            if _SPAN_KEYS <= document.keys():  # a single bare span
                return cls(spans=[_span_from_dict(document)])
        raise ValueError("unrecognized trace document")

    @classmethod
    def _from_jsonl(cls, text: str) -> "Trace":
        """Parse JSONL event-stream output; keep the span-shaped lines.

        A torn *final* line — the writer died mid-append, e.g. a sink
        whose driver was killed — is dropped; a malformed line anywhere
        else is real corruption and re-raises.
        """
        spans: list[TaskSpan] = []
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        for position, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    break
                raise
            if isinstance(record, dict) and _SPAN_KEYS <= record.keys():
                spans.append(_span_from_dict(record))
        return cls(spans=spans)

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt: one row per slot, task ids mod 10 as fill digits."""
        if not self.spans:
            return "(empty trace)"
        if width < 10:
            raise ValueError(f"gantt needs width >= 10, got {width}")
        total = self.makespan
        lines = [f"0{' ' * (width - len(str(round(total, 1))) - 1)}{round(total, 1)}s"]
        for node, slot in self.slots:
            row = [" "] * width
            for span in self.spans_on(node, slot):
                lo = int(span.start / total * (width - 1))
                hi = max(lo + 1, int(span.end / total * (width - 1)))
                digit = str(span.task_id % 10)
                for col in range(lo, min(hi, width)):
                    row[col] = digit
            lines.append(f"n{node}.s{slot} |{''.join(row)}|")
        return "\n".join(lines)


def build_trace(
    tasks: Sequence[TaskCost],
    cluster: ClusterSpec,
    *,
    scheduler=None,
) -> Trace:
    """Schedule tasks (LPT by default) and derive their timeline.

    Tasks placed on the same slot start in descending-cost order (the
    order LPT assigned them), each beginning when its predecessor ends.
    The resulting trace inventories *every* usable slot, including ones
    that received no tasks.
    """
    from .scheduler import schedule_lpt

    schedule = scheduler or schedule_lpt
    assignment = schedule(tasks, cluster)
    cost_of = {task.task_id: task.seconds for task in tasks}
    # Reconstruct per-slot execution order: LPT assigns longest first.
    per_slot: dict[tuple[int, int], list[int]] = {}
    for task in sorted(tasks, key=lambda t: (-t.seconds, t.task_id)):
        per_slot.setdefault(assignment.placement[task.task_id], []).append(
            task.task_id
        )
    spans = []
    for slot, task_ids in per_slot.items():
        clock = 0.0
        for task_id in task_ids:
            duration = cost_of[task_id]
            spans.append(
                TaskSpan(
                    task_id=task_id, node=slot[0], slot=slot[1],
                    start=clock, end=clock + duration,
                )
            )
            clock += duration
    return Trace(spans=spans, slots=sorted(assignment.slot_loads))
