"""Network cost model: the "possibly slow" interconnect of §3.

The execution model permits data shipping between jobs but no online
communication; all the simulator needs from the network is *how long bulk
transfers take* and *how many bytes crossed it*.  The model is a classic
α–β one: a transfer of ``b`` bytes costs ``latency + b / bandwidth``, and
aggregate shuffle traffic over ``n`` nodes is spread over per-node links
(each node sources and sinks roughly ``1/n`` of the volume).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import MB


@dataclass(frozen=True)
class NetworkModel:
    """Per-link bandwidth/latency and a cluster-level shuffle estimator."""

    bandwidth: float = 100 * MB  #: bytes/second per node link
    latency: float = 0.5e-3  #: seconds per transfer setup

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")

    def transfer_time(self, num_bytes: int) -> float:
        """Point-to-point time to move ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"bytes must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth

    def shuffle_time(self, total_bytes: int, num_nodes: int) -> float:
        """All-to-all shuffle of ``total_bytes`` over ``num_nodes`` links.

        Each node both sends and receives ≈ ``total/n``; the phases overlap
        in Hadoop, so the bound is one direction's volume per link plus a
        latency term per peer.
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if total_bytes < 0:
            raise ValueError(f"bytes must be non-negative, got {total_bytes}")
        per_link = total_bytes / num_nodes
        return self.latency * max(0, num_nodes - 1) + per_link / self.bandwidth

    def relay_shuffle_time(self, total_bytes: int, num_nodes: int) -> float:
        """Shuffle of ``total_bytes`` funnelled through a single driver link.

        Models the legacy driver-relay data plane: every intermediate byte
        crosses the driver's link *twice* (gathered from mappers, forwarded
        to reducers), serialized on one link instead of spread over ``n``
        — the driver is the bottleneck regardless of cluster size, which
        is exactly what the direct spill-file plane removes.  A latency
        term per peer applies to each direction.
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if total_bytes < 0:
            raise ValueError(f"bytes must be non-negative, got {total_bytes}")
        return 2 * (
            self.latency * max(0, num_nodes - 1) + total_bytes / self.bandwidth
        )

    def broadcast_time(self, num_bytes: int, num_nodes: int) -> float:
        """Time to replicate ``num_bytes`` to every node.

        Models Hadoop's distributed cache as a pipelined tree: the data
        crosses ~log2(n) link generations but the pipeline keeps every link
        busy, so the dominant term stays ``bytes / bandwidth`` with a
        latency factor per tree level.
        """
        import math

        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if num_nodes == 1 or num_bytes == 0:
            return 0.0
        levels = max(1, math.ceil(math.log2(num_nodes)))
        return levels * self.latency + num_bytes / self.bandwidth
