"""Node model for the cluster simulator.

The paper's §6 observation drives the memory model: although 2010 cloud
machines had plenty of RAM, *per-task* memory was as little as 200 MB
because (a) several VMs share a physical machine and (b) each VM hosts
several concurrent mapper/reducer slots.  A :class:`NodeSpec` therefore
carries per-slot memory (the effective maxws), a slot count, and rates for
computing and I/O; :class:`ClusterSpec` aggregates homogeneous or mixed
nodes.

The paper also measured that "the working set size limit was hit a little
earlier than expected ... next to the elements themselves, other variables
and data need to be kept in memory" — modelled as
:attr:`NodeSpec.memory_overhead` (fraction of slot memory consumed by the
framework before any element is loaded).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import MB


@dataclass(frozen=True)
class NodeSpec:
    """One worker node.

    - ``slot_memory`` — bytes of heap one task may use (the paper's maxws).
    - ``slots`` — concurrent tasks the node hosts.
    - ``eval_rate`` — pair evaluations per second per slot.
    - ``io_rate`` — bytes/second for local disk reads/writes.
    - ``memory_overhead`` — fraction of ``slot_memory`` consumed by the
      runtime itself (JVM/Python, framework buffers); the usable working
      set is ``slot_memory · (1 − memory_overhead)``.
    """

    slot_memory: int = 200 * MB
    slots: int = 2
    eval_rate: float = 10_000.0
    io_rate: float = 50 * MB
    memory_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.slot_memory < 1:
            raise ValueError(f"slot_memory must be positive, got {self.slot_memory}")
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.eval_rate <= 0 or self.io_rate <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 <= self.memory_overhead < 1.0:
            raise ValueError(
                f"memory_overhead must be in [0, 1), got {self.memory_overhead}"
            )

    @property
    def usable_slot_memory(self) -> int:
        """Slot memory actually available for elements (after overhead)."""
        return int(self.slot_memory * (1.0 - self.memory_overhead))


@dataclass
class ClusterSpec:
    """A set of nodes; homogeneous by default.

    ``ClusterSpec.homogeneous(8)`` builds the paper-like 8-node cluster.
    """

    nodes: list[NodeSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")

    @classmethod
    def homogeneous(cls, num_nodes: int, spec: NodeSpec | None = None) -> "ClusterSpec":
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return cls(nodes=[spec or NodeSpec()] * num_nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_slots(self) -> int:
        return sum(node.slots for node in self.nodes)

    @property
    def min_slot_memory(self) -> int:
        """The binding maxws: the smallest usable slot memory in the cluster."""
        return min(node.usable_slot_memory for node in self.nodes)
