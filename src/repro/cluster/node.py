"""Node model for the cluster simulator.

The paper's §6 observation drives the memory model: although 2010 cloud
machines had plenty of RAM, *per-task* memory was as little as 200 MB
because (a) several VMs share a physical machine and (b) each VM hosts
several concurrent mapper/reducer slots.  A :class:`NodeSpec` therefore
carries per-slot memory (the effective maxws), a slot count, and rates for
computing and I/O; :class:`ClusterSpec` aggregates homogeneous or mixed
nodes.

The paper also measured that "the working set size limit was hit a little
earlier than expected ... next to the elements themselves, other variables
and data need to be kept in memory" — modelled as
:attr:`NodeSpec.memory_overhead` (fraction of slot memory consumed by the
framework before any element is loaded).

:class:`FailureModel` adds the commodity-cluster reality the paper's
framework choice is predicated on: tasks fail and get re-executed.  It
turns a failure rate (or MTBF) into an expected re-execution cost per
task, which the simulator folds into scheduling to report a
failure-adjusted makespan — exposing how a scheme's replication choice
(its working-set size) drives recovery cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .._util import MB


@dataclass(frozen=True)
class NodeSpec:
    """One worker node.

    - ``slot_memory`` — bytes of heap one task may use (the paper's maxws).
    - ``slots`` — concurrent tasks the node hosts.
    - ``eval_rate`` — pair evaluations per second per slot.
    - ``io_rate`` — bytes/second for local disk reads/writes.
    - ``memory_overhead`` — fraction of ``slot_memory`` consumed by the
      runtime itself (JVM/Python, framework buffers); the usable working
      set is ``slot_memory · (1 − memory_overhead)``.
    """

    slot_memory: int = 200 * MB
    slots: int = 2
    eval_rate: float = 10_000.0
    io_rate: float = 50 * MB
    memory_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.slot_memory < 1:
            raise ValueError(f"slot_memory must be positive, got {self.slot_memory}")
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.eval_rate <= 0 or self.io_rate <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 <= self.memory_overhead < 1.0:
            raise ValueError(
                f"memory_overhead must be in [0, 1), got {self.memory_overhead}"
            )

    @property
    def usable_slot_memory(self) -> int:
        """Slot memory actually available for elements (after overhead)."""
        return int(self.slot_memory * (1.0 - self.memory_overhead))


@dataclass(frozen=True)
class FailureModel:
    """Poisson task-failure model: MTBF → expected re-execution cost.

    A task running for ``t`` seconds on a slot whose host fails with mean
    time between failures ``mtbf_seconds`` dies before finishing with
    probability ``p = 1 − exp(−t / mtbf)``.  Under independent retries
    the expected number of failed runs before the first success is
    ``p / (1 − p)``; each failed run wastes half the task on average
    (failures arrive uniformly over the attempt) plus the cost of
    re-localizing the task's working set and a fixed re-scheduling
    overhead (Hadoop's task-restart latency).  That makes the expected
    completion time

    ``t_adj = t + p/(1−p) · (t/2 + refetch + restart_overhead)``

    — which is exactly where replication choice bites: a scheme with
    small working sets pays a small ``refetch`` on recovery, a broadcast
    scheme re-ships the whole dataset.
    """

    mtbf_seconds: float
    restart_overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.mtbf_seconds > 0:
            raise ValueError(f"mtbf_seconds must be > 0, got {self.mtbf_seconds}")
        if self.restart_overhead_seconds < 0:
            raise ValueError(
                "restart_overhead_seconds must be >= 0, got "
                f"{self.restart_overhead_seconds}"
            )

    @classmethod
    def from_task_failure_rate(
        cls,
        rate: float,
        task_seconds: float,
        *,
        restart_overhead_seconds: float = 0.0,
    ) -> "FailureModel":
        """Model under which a ``task_seconds``-long task fails with ``rate``.

        ``rate=0`` yields an infinite MTBF (a model that never fails) so
        benchmark sweeps can include the 0% point without special-casing.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        if task_seconds <= 0:
            raise ValueError(f"task_seconds must be > 0, got {task_seconds}")
        mtbf = math.inf if rate == 0.0 else task_seconds / -math.log1p(-rate)
        return cls(mtbf_seconds=mtbf, restart_overhead_seconds=restart_overhead_seconds)

    def failure_probability(self, task_seconds: float) -> float:
        """P(the slot fails while a ``task_seconds``-long attempt runs)."""
        if task_seconds <= 0 or math.isinf(self.mtbf_seconds):
            return 0.0
        return -math.expm1(-task_seconds / self.mtbf_seconds)

    def expected_reexecutions(self, task_seconds: float) -> float:
        """Expected failed runs before one attempt of length ``t`` lands."""
        p = self.failure_probability(task_seconds)
        return p / (1.0 - p)

    def expected_task_seconds(
        self, task_seconds: float, refetch_seconds: float = 0.0
    ) -> float:
        """Expected wall clock including re-executions and re-localization."""
        retries = self.expected_reexecutions(task_seconds)
        return task_seconds + retries * (
            task_seconds / 2.0 + refetch_seconds + self.restart_overhead_seconds
        )


@dataclass
class ClusterSpec:
    """A set of nodes; homogeneous by default.

    ``ClusterSpec.homogeneous(8)`` builds the paper-like 8-node cluster.
    """

    nodes: list[NodeSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")

    @classmethod
    def homogeneous(cls, num_nodes: int, spec: NodeSpec | None = None) -> "ClusterSpec":
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return cls(nodes=[spec or NodeSpec()] * num_nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_slots(self) -> int:
        return sum(node.slots for node in self.nodes)

    @property
    def min_slot_memory(self) -> int:
        """The binding maxws: the smallest usable slot memory in the cluster."""
        return min(node.usable_slot_memory for node in self.nodes)
