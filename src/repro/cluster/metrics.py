"""Theory-vs-measured comparison structures for the §6 evaluation.

The paper reports that measured replication factors and working-set sizes
"showed to be close to our theoretic evaluations", with the working-set
limit hit slightly early due to runtime overhead.  These dataclasses carry
one scheme's predicted Table-1 row next to the simulator's measurements and
compute the relative errors the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheme import SchemeMetrics


@dataclass(frozen=True)
class MeasuredMetrics:
    """What the simulator actually observed for one scheme run."""

    scheme: str
    v: int
    num_tasks: int
    #: total element replicas shipped (per job leg; ×2 for the round trip)
    replicas: int
    replication_factor: float
    max_working_set_elements: int
    max_working_set_bytes: int
    #: peak per-task memory including runtime overhead
    max_task_memory_bytes: int
    intermediate_bytes: int
    total_evaluations: int
    max_evaluations_per_task: int
    makespan_seconds: float
    #: makespan with expected re-execution cost folded in (equals
    #: ``makespan_seconds`` when the simulator has no failure model)
    makespan_failure_adjusted: float = 0.0
    #: expected number of failed task runs across the whole scheme
    expected_reexecutions: float = 0.0
    #: ``makespan_failure_adjusted − makespan_seconds``
    recovery_overhead_seconds: float = 0.0
    #: shuffle data plane the run was modelled under ("direct" or "relay")
    shuffle_plane: str = "direct"
    #: intermediate bytes crossing the driver link (0 on the direct plane,
    #: the full shuffle volume on the relay plane)
    driver_bytes: int = 0
    #: serialized driver-link time added to the makespan (relay plane only)
    relay_seconds: float = 0.0


@dataclass(frozen=True)
class ComparisonRow:
    """Predicted vs measured for one quantity."""

    quantity: str
    predicted: float
    measured: float

    @property
    def relative_error(self) -> float:
        """|measured − predicted| / predicted (0 when both are 0)."""
        if self.predicted == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return abs(self.measured - self.predicted) / abs(self.predicted)


@dataclass(frozen=True)
class TheoryComparison:
    """Full theory-vs-measured record for one simulated scheme."""

    theory: SchemeMetrics
    measured: MeasuredMetrics

    def rows(self) -> list[ComparisonRow]:
        return [
            ComparisonRow("num_tasks", self.theory.num_tasks, self.measured.num_tasks),
            ComparisonRow(
                "replication_factor",
                self.theory.replication_factor,
                self.measured.replication_factor,
            ),
            ComparisonRow(
                "working_set_elements",
                self.theory.working_set_elements,
                self.measured.max_working_set_elements,
            ),
            ComparisonRow(
                "evaluations_per_task",
                self.theory.evaluations_per_task,
                self.measured.max_evaluations_per_task,
            ),
        ]

    def max_relative_error(self) -> float:
        return max(row.relative_error for row in self.rows())

    def format(self) -> str:
        lines = [f"{self.theory.scheme} (v={self.theory.v}):"]
        for row in self.rows():
            lines.append(
                f"  {row.quantity:<22} theory={row.predicted:>12.6g}  "
                f"measured={row.measured:>12.6g}  err={row.relative_error:7.2%}"
            )
        return "\n".join(lines)
