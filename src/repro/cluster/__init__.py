"""Cluster simulator: nodes, network, scheduling, and §6-style measurement."""

from .metrics import ComparisonRow, MeasuredMetrics, TheoryComparison
from .network import NetworkModel
from .node import ClusterSpec, FailureModel, NodeSpec
from .racks import (
    Locality,
    RackTopology,
    locality_profile,
    rack_aware_placement,
    read_locality,
)
from .scheduler import (
    Assignment,
    TaskCost,
    schedule_lpt,
    schedule_lpt_heterogeneous,
    schedule_round_robin,
)
from .simulator import ClusterSimulator, LimitCheck, SimulationReport
from .trace import TaskSpan, Trace, build_trace

__all__ = [
    "Assignment",
    "ClusterSimulator",
    "ClusterSpec",
    "ComparisonRow",
    "FailureModel",
    "LimitCheck",
    "Locality",
    "MeasuredMetrics",
    "NetworkModel",
    "NodeSpec",
    "RackTopology",
    "SimulationReport",
    "TaskCost",
    "TaskSpan",
    "TheoryComparison",
    "Trace",
    "build_trace",
    "locality_profile",
    "rack_aware_placement",
    "read_locality",
    "schedule_lpt",
    "schedule_lpt_heterogeneous",
    "schedule_round_robin",
]
