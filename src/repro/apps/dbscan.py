"""DBSCAN on top of parallel pairwise distances (paper §1's first example).

DBSCAN (Ester et al., KDD-96) needs, for every point, its ε-neighbourhood —
exactly a pairwise distance computation with threshold pruning (the §3 note
that "applications (like DBSCAN) may also allow to prune some results ...
e.g., a distance to be less than a threshold").  The split here mirrors
that:

1. the *distance phase* runs through :class:`PairwiseComputation` with a
   :class:`ThresholdAggregator` keeping only partners within ε, under any
   distribution scheme;
2. the *clustering phase* is classic DBSCAN over the pruned neighbour
   lists: core points (≥ min_pts points in their ε-ball, themselves
   included), clusters as connected components of core points, border
   points adopted by a neighbouring core's cluster, the rest noise.

:func:`dbscan_reference` is the single-machine oracle used by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.element import Element
from ..core.pairwise import PairwiseComputation
from ..core.scheme import DistributionScheme
from ..kernels import register_comp
from ..sketches import register_sketch

NOISE = -1


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric pair function: the L2 distance between two points."""
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return float(math.sqrt(float(np.dot(diff, diff))))


# With kernel="auto", pairwise batches distance evaluation over ndarray
# payloads through the dense euclidean kernel.
register_comp(euclidean_distance, "dense-euclidean")

# With pruning="sketch", threshold/top-k runs bound the distance two-sided
# via an orthonormal projection sketch.
register_sketch(euclidean_distance, "dense-euclidean")


@dataclass(frozen=True)
class DBSCANResult:
    """Cluster labels (0-based cluster ids; −1 = noise) and core flags.

    Indexed by element id (1-indexed, like the pairwise layer).
    """

    labels: dict[int, int]
    core: frozenset[int]

    @property
    def num_clusters(self) -> int:
        return len({label for label in self.labels.values() if label != NOISE})

    def members(self, cluster: int) -> list[int]:
        return sorted(eid for eid, label in self.labels.items() if label == cluster)


def cluster_from_neighbors(
    neighbors: Mapping[int, Sequence[int]], min_pts: int
) -> DBSCANResult:
    """DBSCAN's second half: labels from precomputed ε-neighbour lists.

    ``neighbors[eid]`` lists the *other* points within ε of ``eid`` (the
    point itself is implicit, matching the pairwise layer's result maps).
    """
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    # Core test counts the point itself: |N_eps(p)| >= min_pts.
    core = frozenset(
        eid for eid, others in neighbors.items() if len(others) + 1 >= min_pts
    )
    labels: dict[int, int] = {eid: NOISE for eid in neighbors}
    cluster = 0
    for seed in sorted(core):
        if labels[seed] != NOISE:
            continue
        # BFS over density-connected core points.
        labels[seed] = cluster
        frontier = [seed]
        while frontier:
            point = frontier.pop()
            for other in neighbors[point]:
                if other in core:
                    if labels[other] == NOISE:
                        labels[other] = cluster
                        frontier.append(other)
                elif labels[other] == NOISE:
                    labels[other] = cluster  # border point adopted, not expanded
        cluster += 1
    return DBSCANResult(labels=labels, core=core)


def dbscan_pairwise(
    points: Sequence[np.ndarray],
    eps: float,
    min_pts: int,
    scheme: DistributionScheme,
    *,
    engine=None,
    use_local: bool = False,
    pruning: str = "off",
    sketch_params=None,
) -> DBSCANResult:
    """Full DBSCAN via the parallel pairwise pipeline under ``scheme``.

    ``use_local=True`` skips the MR machinery (same semantics, faster for
    big in-process runs); otherwise the two-job pipeline runs on
    ``engine`` (default serial).

    ``pruning="sketch"`` skips pairs whose projection-sketch distance
    lower bound already reaches ε — a sound bound, so the clustering is
    identical to the unpruned run (``use_local=True`` never prunes).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    computation = PairwiseComputation(
        scheme,
        euclidean_distance,
        threshold=eps,
        pruning=pruning,
        sketch_params=sketch_params,
        engine=engine,
    )
    merged: dict[int, Element]
    if use_local:
        merged = computation.run_local(list(points))
    else:
        merged = computation.run(list(points))
    neighbors = {eid: sorted(element.results) for eid, element in merged.items()}
    return cluster_from_neighbors(neighbors, min_pts)


def dbscan_reference(
    points: Sequence[np.ndarray], eps: float, min_pts: int
) -> DBSCANResult:
    """Single-machine DBSCAN oracle: O(v²) distances, same label semantics.

    Note DBSCAN's border-point assignment is order-dependent when a border
    point touches two clusters; both this oracle and
    :func:`cluster_from_neighbors` resolve ties by ascending core-point id,
    so results are directly comparable.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    arr = [np.asarray(p, dtype=float) for p in points]
    v = len(arr)
    neighbors: dict[int, list[int]] = {eid: [] for eid in range(1, v + 1)}
    for i in range(v):
        for j in range(i + 1, v):
            if euclidean_distance(arr[i], arr[j]) < eps:
                neighbors[i + 1].append(j + 1)
                neighbors[j + 1].append(i + 1)
    return cluster_from_neighbors(neighbors, min_pts)
