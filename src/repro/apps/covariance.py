"""Covariance matrices via pairwise inner products (paper §1's PCA example).

"The computation of the covariance matrix of a matrix A requires to
compute A × Aᵀ.  This multiplication is a pairwise inner product on all
rows of A."  Elements are the (centered) rows; the pair function is the dot
product; the off-diagonal covariance entries come straight out of the
pairwise result lists, the diagonal from each row's self product, and PCA
is an eigendecomposition on top.

Centering convention: *column* means are removed, matching ``np.cov`` of
the row-variable matrix with ``bias=False`` (the ``n−1`` divisor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..kernels import register_comp
from ..sketches import register_sketch


def row_inner_product(a: np.ndarray, b: np.ndarray) -> float:
    """Pair function: inner product of two (already centered) rows."""
    return float(np.dot(np.asarray(a, dtype=float), np.asarray(b, dtype=float)))


# With kernel="auto", pairwise batches row dot products through the
# covariance kernel (BLAS gram product on dense working sets).
register_comp(row_inner_product, "covariance")

# With pruning="sketch", thresholded covariance entries bound the dot
# product via the projection sketch (coords dot + residual Cauchy-Schwarz).
register_sketch(row_inner_product, "dense-dot")


def center_rows(matrix: np.ndarray) -> list[np.ndarray]:
    """Rows of A with column means removed — the pairwise element payloads."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    centered = arr - arr.mean(axis=1, keepdims=True)
    return [centered[i] for i in range(centered.shape[0])]


def assemble_covariance(
    pair_products: Mapping[tuple[int, int], float],
    rows: Sequence[np.ndarray],
) -> np.ndarray:
    """Covariance matrix from pairwise products plus per-row self products.

    ``pair_products`` maps 1-indexed ``(i, j)`` (i > j) to the centered
    rows' inner products; the divisor is ``m − 1`` for m samples (columns).
    """
    v = len(rows)
    if v == 0:
        raise ValueError("need at least one row")
    m = len(rows[0])
    if m < 2:
        raise ValueError(f"need >= 2 samples per row for covariance, got {m}")
    cov = np.zeros((v, v), dtype=float)
    for i in range(v):
        cov[i, i] = float(np.dot(rows[i], rows[i])) / (m - 1)
    for (i, j), product in pair_products.items():
        if not (1 <= j < i <= v):
            raise ValueError(f"pair key {(i, j)} out of range for v={v}")
        cov[i - 1, j - 1] = cov[j - 1, i - 1] = product / (m - 1)
    return cov


def covariance_reference(matrix: np.ndarray) -> np.ndarray:
    """Oracle: ``np.cov`` over row variables (the target of the assembly)."""
    return np.cov(np.asarray(matrix, dtype=float), bias=False)


def covariance_via_pairwise(
    matrix: np.ndarray,
    scheme,
    *,
    engine=None,
    kernel="auto",
) -> np.ndarray:
    """End-to-end §1 example: A·Aᵀ as a pairwise computation, assembled.

    Centers the rows, runs the two-job pipeline under ``scheme`` with the
    covariance kernel selected by default (batched BLAS inner products),
    and assembles the full matrix.  ``kernel=None`` forces the scalar
    per-pair dot product.
    """
    from ..core.element import results_matrix
    from ..core.pairwise import PairwiseComputation

    rows = center_rows(matrix)
    computation = PairwiseComputation(
        scheme, row_inner_product, engine=engine, kernel=kernel
    )
    products = results_matrix(computation.run(list(rows)))
    return assemble_covariance(products, rows)


@dataclass(frozen=True)
class PCAResult:
    """Principal components of the row-variable covariance."""

    eigenvalues: np.ndarray  #: descending
    components: np.ndarray  #: (k, v) rows are eigenvectors

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        total = float(self.eigenvalues.sum())
        if total <= 0:
            return np.zeros_like(self.eigenvalues)
        return self.eigenvalues / total


def pca_from_covariance(cov: np.ndarray, k: int | None = None) -> PCAResult:
    """Top-k eigenpairs of a symmetric covariance matrix (descending).

    Eigenvector signs are fixed so each vector's largest-magnitude entry is
    positive, making results comparable across runs and libraries.
    """
    cov = np.asarray(cov, dtype=float)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise ValueError(f"covariance must be square, got shape {cov.shape}")
    values, vectors = np.linalg.eigh(cov)  # ascending for symmetric input
    order = np.argsort(values)[::-1]
    values = values[order]
    vectors = vectors[:, order]
    if k is not None:
        if not 1 <= k <= cov.shape[0]:
            raise ValueError(f"k must be in [1, {cov.shape[0]}], got {k}")
        values = values[:k]
        vectors = vectors[:, :k]
    # Deterministic sign convention.
    for col in range(vectors.shape[1]):
        pivot = np.argmax(np.abs(vectors[:, col]))
        if vectors[pivot, col] < 0:
            vectors[:, col] = -vectors[:, col]
    return PCAResult(eigenvalues=values, components=vectors.T)
