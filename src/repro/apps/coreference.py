"""Cross-document co-reference (paper §1's second example).

"Cross-document co-referencing of websites or documents tries to
determine whether two mentions of entities refer to the same person
(Gooi & Allan, HLT/NAACL-04).  Complex operations on pairs of documents
are required to compute a complete cross-reference."

Elements are entity *mentions* — a surface name plus the bag of context
words around it.  The pair function scores two mentions' compatibility
by combining

- **name compatibility** — token containment with initial-matching
  ("J. Smith" vs "John Smith" vs "Smith"), and
- **context similarity** — cosine over the context bags

into one score; incompatible names short-circuit to 0, matching the
blocking heuristics of real co-reference systems.  Chains are then the
connected components of the mention graph thresholded on the score —
single-link agglomerative clustering, as in Gooi & Allan's baseline.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass(frozen=True)
class Mention:
    """One entity mention: the surface form and its context words."""

    name: str
    context: tuple[str, ...] = ()
    #: originating document (metadata only; not used in scoring)
    doc_id: int = 0

    def name_tokens(self) -> tuple[str, ...]:
        return tuple(token for token in self.name.lower().replace(".", " ").split() if token)


def name_compatibility(a: Mention, b: Mention) -> float:
    """Name agreement in [0, 1]; 0 means "cannot be the same entity".

    Rules (standard blocking heuristics):
    - exact token sequence → 1.0;
    - one token sequence contains the other (e.g. "smith" ⊂ "john smith")
      → 0.8;
    - every token of the shorter name matches a token of the longer by
      equality *or* initial ("j" vs "john") → 0.7;
    - otherwise 0.0.
    """
    ta, tb = a.name_tokens(), b.name_tokens()
    if not ta or not tb:
        return 0.0
    if ta == tb:
        return 1.0
    short, long_ = (ta, tb) if len(ta) <= len(tb) else (tb, ta)
    if all(token in long_ for token in short):
        return 0.8
    remaining = list(long_)
    for token in short:
        for candidate in remaining:
            if token == candidate or (
                len(token) == 1 and candidate.startswith(token)
            ) or (len(candidate) == 1 and token.startswith(candidate)):
                remaining.remove(candidate)
                break
        else:
            return 0.0
    return 0.7


def context_cosine(a: Mention, b: Mention) -> float:
    """Cosine over the two mentions' context bags (0 when either is empty)."""
    ca, cb = Counter(a.context), Counter(b.context)
    if not ca or not cb:
        return 0.0
    dot = sum(count * cb.get(word, 0) for word, count in ca.items())
    norm = math.sqrt(sum(c * c for c in ca.values())) * math.sqrt(
        sum(c * c for c in cb.values())
    )
    return dot / norm if norm else 0.0


class CoreferenceComp:
    """Picklable pair function: blended name/context compatibility.

    ``score = name_weight·name + (1−name_weight)·context`` when the names
    are compatible; exactly 0.0 otherwise (the blocking rule).
    """

    def __init__(self, name_weight: float = 0.5):
        if not 0.0 <= name_weight <= 1.0:
            raise ValueError(f"name_weight must be in [0, 1], got {name_weight}")
        self.name_weight = name_weight

    def __call__(self, a: Mention, b: Mention) -> float:
        name_score = name_compatibility(a, b)
        if name_score == 0.0:
            return 0.0
        context_score = context_cosine(a, b)
        return self.name_weight * name_score + (1 - self.name_weight) * context_score


@dataclass
class CoreferenceChains:
    """Entity chains: a partition of mention ids 1..v."""

    chains: list[list[int]] = field(default_factory=list)

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    def chain_of(self, mention_id: int) -> list[int]:
        for chain in self.chains:
            if mention_id in chain:
                return chain
        raise KeyError(f"mention {mention_id} in no chain")

    def as_labels(self) -> dict[int, int]:
        """mention id → 0-based chain index."""
        return {
            mention: index
            for index, chain in enumerate(self.chains)
            for mention in chain
        }


def chains_from_scores(
    scores: Mapping[tuple[int, int], float], v: int, threshold: float
) -> CoreferenceChains:
    """Single-link clustering: union mentions scoring above ``threshold``.

    ``scores`` maps canonical (i, j), i > j, to the pair score — exactly
    the shape :func:`repro.core.pairwise.pairwise_results` returns.
    Chains come out sorted (by smallest member) with sorted members.
    """
    parent = list(range(v + 1))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for (i, j), score in scores.items():
        if not (1 <= j < i <= v):
            raise ValueError(f"pair key {(i, j)} out of range for v={v}")
        if score > threshold:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[ri] = rj
    groups: dict[int, list[int]] = {}
    for mention in range(1, v + 1):
        groups.setdefault(find(mention), []).append(mention)
    chains = sorted((sorted(members) for members in groups.values()), key=lambda c: c[0])
    return CoreferenceChains(chains=chains)


def coreference_reference(
    mentions: Sequence[Mention], threshold: float, *, name_weight: float = 0.5
) -> CoreferenceChains:
    """Single-machine oracle: brute-force scores, then clustering."""
    comp = CoreferenceComp(name_weight)
    scores = {
        (i, j): comp(mentions[i - 1], mentions[j - 1])
        for i in range(2, len(mentions) + 1)
        for j in range(1, i)
    }
    return chains_from_scores(scores, len(mentions), threshold)


def b_cubed(predicted: CoreferenceChains, truth: Mapping[int, int]) -> tuple[float, float, float]:
    """B³ precision/recall/F1 of predicted chains against true labels.

    The standard co-reference metric: per mention, precision is the
    fraction of its predicted chain sharing its true label, recall the
    fraction of its true class captured by the chain.
    """
    labels = predicted.as_labels()
    if set(labels) != set(truth):
        raise ValueError("predicted chains and truth cover different mentions")
    from collections import defaultdict

    true_class: defaultdict[int, set[int]] = defaultdict(set)
    for mention, label in truth.items():
        true_class[label].add(mention)
    pred_chain = {m: set(predicted.chain_of(m)) for m in labels}

    precisions, recalls = [], []
    for mention in labels:
        chain = pred_chain[mention]
        cls = true_class[truth[mention]]
        overlap = len(chain & cls)
        precisions.append(overlap / len(chain))
        recalls.append(overlap / len(cls))
    precision = sum(precisions) / len(precisions)
    recall = sum(recalls) / len(recalls)
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1
