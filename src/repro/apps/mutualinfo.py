"""Gene-pair mutual information (paper §1's bioinformatics example).

"Comparing the mutual information of all pairs of genes from gene
expression micro-arrays is a necessary first step for reconstructing gene
regulatory networks" (Qiu et al. 2009).  Elements are per-gene expression
profiles (one value per sample); the pair function is the histogram
estimator of mutual information; the downstream step builds the relevance
network: an edge wherever MI clears a threshold.

The estimator uses equal-width binning over each profile's own range —
the standard fast estimator for this workload — and natural-log units
(nats).  MI is symmetric by construction, satisfying the paper's standing
symmetry assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


def _bin_indices(profile: np.ndarray, bins: int) -> np.ndarray:
    """Equal-width bin index of each sample; constant profiles → bin 0."""
    lo = float(profile.min())
    hi = float(profile.max())
    if hi <= lo:
        return np.zeros(len(profile), dtype=np.intp)
    # Scale into [0, bins); the max lands in the last bin.
    scaled = (profile - lo) * (bins / (hi - lo))
    return np.minimum(scaled.astype(np.intp), bins - 1)


def mutual_information(
    x: np.ndarray, y: np.ndarray, bins: int = 8
) -> float:
    """Histogram MI estimate (nats) between two expression profiles.

    ``MI = Σ p(a,b) · ln( p(a,b) / (p(a)·p(b)) )`` over the joint
    equal-width histogram.  Non-negative up to float round-off; 0 for
    independent or constant profiles.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"profiles must be equal-length 1-D, got {x.shape} vs {y.shape}")
    if len(x) == 0:
        raise ValueError("profiles must be non-empty")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    ix = _bin_indices(x, bins)
    iy = _bin_indices(y, bins)
    joint = np.zeros((bins, bins), dtype=float)
    np.add.at(joint, (ix, iy), 1.0)
    joint /= len(x)
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)
    mask = joint > 0
    denom = np.outer(px, py)[mask]
    mi = float(np.sum(joint[mask] * np.log(joint[mask] / denom)))
    return max(mi, 0.0)  # clamp the tiny negative round-off


class MutualInformationComp:
    """Picklable pair function with a fixed bin count (for MR workers)."""

    def __init__(self, bins: int = 8):
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.bins = bins

    def __call__(self, x: np.ndarray, y: np.ndarray) -> float:
        return mutual_information(x, y, bins=self.bins)


@dataclass(frozen=True)
class RelevanceNetwork:
    """Thresholded MI graph over genes 1..v."""

    num_genes: int
    threshold: float
    edges: tuple[tuple[int, int, float], ...]  # (i, j, mi) with i > j

    def degree(self, gene: int) -> int:
        return sum(1 for i, j, _mi in self.edges if gene in (i, j))

    def neighbors(self, gene: int) -> list[int]:
        out = []
        for i, j, _mi in self.edges:
            if i == gene:
                out.append(j)
            elif j == gene:
                out.append(i)
        return sorted(out)

    def to_networkx(self):
        """Export as a networkx.Graph (genes as nodes, MI as edge weight)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(1, self.num_genes + 1))
        graph.add_weighted_edges_from(self.edges, weight="mi")
        return graph

    def components(self) -> list[set[int]]:
        """Connected components (isolated genes form singletons)."""
        parent = {g: g for g in range(1, self.num_genes + 1)}

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for i, j, _mi in self.edges:
            ra, rb = find(i), find(j)
            if ra != rb:
                parent[ra] = rb
        groups: dict[int, set[int]] = {}
        for g in range(1, self.num_genes + 1):
            groups.setdefault(find(g), set()).add(g)
        return sorted(groups.values(), key=lambda s: (-len(s), min(s)))


def build_relevance_network(
    mi_results: Mapping[tuple[int, int], float],
    num_genes: int,
    threshold: float,
) -> RelevanceNetwork:
    """Edges for every gene pair with MI above ``threshold``."""
    edges = tuple(
        sorted(
            (i, j, mi)
            for (i, j), mi in mi_results.items()
            if mi > threshold
        )
    )
    return RelevanceNetwork(num_genes=num_genes, threshold=threshold, edges=edges)


def brute_force_mi(
    profiles: Sequence[np.ndarray], bins: int = 8
) -> dict[tuple[int, int], float]:
    """Single-machine oracle for all-pairs MI."""
    out: dict[tuple[int, int], float] = {}
    for i in range(1, len(profiles) + 1):
        for j in range(1, i):
            out[(i, j)] = mutual_information(profiles[i - 1], profiles[j - 1], bins)
    return out
