"""k-nearest-neighbour graphs from pairwise distances.

The natural consumer of the :class:`~repro.core.aggregate.TopKAggregator`:
run the pairwise distance computation keeping only each element's k
closest partners, then assemble the kNN digraph.  Used by a large family
of algorithms adjacent to the paper's §1 motivations (spectral
clustering, manifold learning, outlier detection); included here both as
an application and as the canonical demonstration that *aggregation
changes what is stored, not what is computed* — the schemes still
evaluate every pair exactly once.

Also provides the *mutual* kNN sparsification (keep an edge only when
each endpoint is in the other's top-k) and an exact brute-force oracle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.pairwise import PairwiseComputation
from ..core.scheme import DistributionScheme
from .dbscan import euclidean_distance


@dataclass(frozen=True)
class KnnGraph:
    """Directed kNN graph: ``neighbors[i]`` = i's k closest, ascending.

    Each neighbour entry is ``(partner_id, distance)``; ties break on
    partner id (the TopKAggregator's deterministic rule).
    """

    k: int
    neighbors: dict[int, tuple[tuple[int, float], ...]]

    @property
    def num_elements(self) -> int:
        return len(self.neighbors)

    def edge_set(self) -> set[tuple[int, int]]:
        """Directed edges (i → j) of the graph."""
        return {
            (eid, partner)
            for eid, partners in self.neighbors.items()
            for partner, _distance in partners
        }

    def mutual_edges(self) -> set[tuple[int, int]]:
        """Undirected mutual-kNN edges, canonical (i, j) with i > j."""
        directed = self.edge_set()
        return {
            (max(a, b), min(a, b))
            for a, b in directed
            if (b, a) in directed
        }

    def to_networkx(self):
        """Directed networkx graph with distances as edge weights."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.neighbors)
        for eid, partners in self.neighbors.items():
            for partner, distance in partners:
                graph.add_edge(eid, partner, distance=distance)
        return graph


def knn_graph(
    points: Sequence[np.ndarray],
    k: int,
    scheme: DistributionScheme,
    *,
    engine=None,
    kernel=None,
    use_local: bool = False,
    pruning: str = "off",
    sketch_params=None,
) -> KnnGraph:
    """Build the kNN graph through the pairwise pipeline under ``scheme``.

    ``kernel`` is forwarded to :class:`PairwiseComputation`; pass
    ``"auto"`` (or ``"dense-euclidean"``) to batch distance evaluation
    through the vectorized kernel instead of one call per pair.

    ``pruning="sketch"`` routes the run through the top-k pruner: pairs
    whose projection-sketch distance lower bound exceeds both endpoints'
    k-th-best upper bound are skipped before kernel dispatch.  The
    top-k bounds are always sound, so the graph is identical to the
    unpruned one (``use_local=True`` never prunes — it is the
    reference).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= len(points):
        raise ValueError(f"k={k} needs at least k+1={k + 1} points, got {len(points)}")
    computation = PairwiseComputation(
        scheme,
        euclidean_distance,
        top_k=k,
        pruning=pruning,
        sketch_params=sketch_params,
        engine=engine,
        kernel=kernel,
    )
    merged = (
        computation.run_local(list(points))
        if use_local
        else computation.run(list(points))
    )
    # O(k' log k) selection; the aggregator already capped results at k,
    # and nsmallest sorts ties exactly like the historical full sort.
    neighbors = {
        eid: tuple(
            heapq.nsmallest(k, element.results.items(), key=lambda kv: (kv[1], kv[0]))
        )
        for eid, element in merged.items()
    }
    return KnnGraph(k=k, neighbors=neighbors)


def knn_reference(points: Sequence[np.ndarray], k: int) -> KnnGraph:
    """Brute-force oracle with the same tie-breaking rule."""
    if k < 1 or k >= len(points):
        raise ValueError(f"need 1 <= k < v, got k={k}, v={len(points)}")
    arr = [np.asarray(p, dtype=float) for p in points]
    v = len(arr)
    neighbors = {}
    for i in range(v):
        distances = [
            (euclidean_distance(arr[i], arr[j]), j + 1)
            for j in range(v)
            if j != i
        ]
        distances.sort()
        neighbors[i + 1] = tuple((eid, d) for d, eid in distances[:k])
    return KnnGraph(k=k, neighbors=neighbors)


def recall_at_k(graph: KnnGraph, reference: KnnGraph) -> float:
    """Fraction of true kNN edges present in ``graph`` (1.0 = exact)."""
    if graph.k != reference.k:
        raise ValueError("graphs built with different k")
    truth = reference.edge_set()
    got = graph.edge_set()
    return len(got & truth) / len(truth) if truth else 1.0


def average_neighbor_distance(graph: KnnGraph) -> float:
    """Mean distance over all stored edges (a compactness summary)."""
    distances = [
        distance
        for partners in graph.neighbors.values()
        for _partner, distance in partners
    ]
    if not distances:
        raise ValueError("graph has no edges")
    return float(sum(distances) / len(distances))


def degree_histogram(graph: KnnGraph) -> Mapping[int, int]:
    """In-degree histogram of the directed kNN graph (hub detection)."""
    indegree: dict[int, int] = {eid: 0 for eid in graph.neighbors}
    for _eid, partners in graph.neighbors.items():
        for partner, _distance in partners:
            indegree[partner] += 1
    histogram: dict[int, int] = {}
    for count in indegree.values():
        histogram[count] = histogram.get(count, 0) + 1
    return dict(sorted(histogram.items()))
