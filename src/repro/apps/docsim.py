"""Pairwise document similarity (paper §1's cross-referencing example).

Two routes to the same answer:

1. **Generic pairwise** — tf-idf vectors as element payloads, cosine
   similarity as the pair function, any distribution scheme.  This is the
   paper's own approach: it works even when "the quadratic complexity of
   the pairwise comparison cannot be reduced".

2. **Inverted-index baseline** — the Elsayed/Lin/Oard (ACL-08) method the
   paper's §2 contrasts against: build a term → (doc, weight) postings
   index, evaluate pairs *within a posting list* only, aggregate partial
   products over terms.  For normalized vectors the sum of per-term weight
   products *is* the cosine, and pairs sharing no term are never touched —
   the complexity reduction the paper says is application-specific.

Both are implemented over :mod:`repro.mapreduce`, so the baseline bench
can compare shuffle volumes and evaluation counts, not just results.
"""

from __future__ import annotations

import heapq
import math
import re
from collections import Counter, defaultdict
from typing import Iterator, Mapping, Sequence

from ..kernels import register_comp
from ..mapreduce.job import Context, Job, Mapper, Reducer
from ..mapreduce.pipeline import Pipeline
from ..mapreduce.runtime import Engine, SerialEngine
from ..sketches import register_sketch

TfIdfVector = dict[str, float]

#: Maximal runs of alphanumeric characters.  ``\w`` matches exactly the
#: characters ``str.isalnum`` accepts plus the underscore, so excluding
#: ``_`` makes the regex reproduce the historical char-by-char tokenizer
#: (isalnum runs, everything else separates) at C speed.
_TOKEN_RE = re.compile(r"[^\W_]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens; punctuation-separated."""
    return _TOKEN_RE.findall(text.lower())


def build_tfidf(documents: Sequence[Sequence[str]]) -> list[TfIdfVector]:
    """L2-normalized tf-idf vectors for tokenized documents.

    idf = ln(N / df); documents with no tokens get empty vectors.
    Normalization makes the dot product of two vectors their cosine.
    """
    n = len(documents)
    if n == 0:
        return []
    df: Counter = Counter()
    for tokens in documents:
        df.update(set(tokens))
    vectors: list[TfIdfVector] = []
    for tokens in documents:
        tf = Counter(tokens)
        vector: TfIdfVector = {}
        for term, count in tf.items():
            idf = math.log(n / df[term])
            weight = count * idf
            if weight != 0.0:
                vector[term] = weight
        norm = math.sqrt(sum(w * w for w in vector.values()))
        if norm > 0:
            vector = {term: w / norm for term, w in vector.items()}
        vectors.append(vector)
    return vectors


def cosine_similarity(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Pair function: cosine of two (normalized) sparse vectors."""
    if len(b) < len(a):
        a, b = b, a
    return sum(weight * b.get(term, 0.0) for term, weight in a.items())


# With kernel="auto", pairwise runs over tf-idf dict payloads batch
# through the CSR sparse-matrix kernel instead of one cosine per call.
register_comp(cosine_similarity, "csr-cosine")

# With pruning="sketch", threshold runs bound the sparse dot product by
# per-bucket norms (heavy-hitter terms isolated via count-min).
register_sketch(cosine_similarity, "sparse-cosine")


def pairwise_similarity(
    vectors: Sequence[TfIdfVector],
    scheme,
    *,
    engine: Engine | None = None,
    kernel: object = "auto",
    num_reduce_tasks: int | None = None,
    threshold: float | None = None,
    pruning: str = "off",
    exact_fallback: bool = True,
    sketch_params: Mapping[str, object] | None = None,
) -> dict[tuple[int, int], float]:
    """All-pairs cosine through the generic pairwise pipeline, vectorized.

    Runs the cached two-job pipeline (payload store in the distributed
    cache) under any :class:`~repro.core.scheme.DistributionScheme` with
    the CSR cosine kernel selected by default; returns the canonical
    ``(i, j) → cosine`` map (i > j, 1-indexed), directly comparable to
    :func:`elsayed_similarity` and :func:`brute_force_similarity`.  Pass
    ``kernel=None`` to force the scalar pair loop.

    ``threshold=`` turns this into a similarity join: only pairs with
    cosine above the threshold are returned (the
    :func:`brute_force_similarity` contract), and ``pruning="sketch"``
    skips pairs whose bucket-norm bound proves they cannot qualify —
    with ``exact_fallback=True`` (default) the result is identical to
    the unpruned join (DESIGN.md §3.1.7).
    """
    from ..core.element import results_matrix
    from ..core.pairwise import PairwiseComputation

    computation = PairwiseComputation(
        scheme,
        cosine_similarity,
        engine=engine,
        kernel=kernel,
        num_reduce_tasks=num_reduce_tasks,
        threshold=threshold,
        pruning=pruning,
        exact_fallback=exact_fallback,
        sketch_params=sketch_params,
    )
    return results_matrix(computation.run_cached(list(vectors)))


# ---------------------------------------------------------------------------
# Elsayed et al. inverted-index baseline, as two MR jobs
# ---------------------------------------------------------------------------

class IndexMapper(Mapper):
    """Job 1 map: (doc_id, tfidf vector) → (term, (doc_id, weight))."""

    def map(self, key: int, value: TfIdfVector, context: Context) -> None:
        for term, weight in value.items():
            context.emit(term, (key, weight))


class PostingsPairReducer(Reducer):
    """Job 1 reduce: emit per-term partial products for doc pairs.

    For each posting list, every pair of documents sharing the term
    contributes ``w_i · w_j`` toward their cosine (Elsayed's Figure 2).
    ``min_df_prune`` drops ultra-common terms whose postings would explode
    quadratically (their idf weight is near zero anyway) — the baseline's
    standard df-cut optimization; None disables it.
    """

    def reduce(self, key: str, values: Iterator, context: Context) -> None:
        prune = context.config.get("df_prune")
        postings = sorted(values)  # by doc id for deterministic pair order
        if prune is not None and len(postings) > prune:
            context.counters.increment("docsim", "pruned_terms")
            return
        for a in range(len(postings)):
            doc_a, weight_a = postings[a]
            for b in range(a):
                doc_b, weight_b = postings[b]
                hi, lo = (doc_a, doc_b) if doc_a > doc_b else (doc_b, doc_a)
                context.emit((hi, lo), weight_a * weight_b)
                context.counters.increment("docsim", "partial_products")


class SimilaritySumReducer(Reducer):
    """Job 2 reduce: sum partial products per pair → final similarity."""

    def reduce(self, key: tuple[int, int], values: Iterator, context: Context) -> None:
        threshold = context.config.get("threshold", 0.0)
        total = sum(values)
        if total > threshold:
            context.emit(key, total)


def elsayed_similarity(
    vectors: Sequence[TfIdfVector],
    *,
    engine: Engine | None = None,
    threshold: float = 0.0,
    df_prune: int | None = None,
    num_reduce_tasks: int = 4,
) -> tuple[dict[tuple[int, int], float], object]:
    """Run the inverted-index pipeline; returns (pair→cosine, PipelineResult).

    Pair keys are canonical ``(i, j)`` with i > j, 1-indexed doc ids —
    directly comparable to :func:`repro.core.pairwise.pairwise_results`.
    Pairs with no shared term are absent (implicitly zero).
    """
    config = {"threshold": threshold, "df_prune": df_prune}
    job1 = Job(
        name="docsim-index-pairs",
        mapper=IndexMapper,
        reducer=PostingsPairReducer,
        num_reducers=num_reduce_tasks,
        config=config,
    )
    job2 = Job(
        name="docsim-sum",
        reducer=SimilaritySumReducer,
        num_reducers=num_reduce_tasks,
        config=config,
    )
    pipeline = Pipeline([job1, job2], engine=engine or SerialEngine())
    records = [(doc_id + 1, vector) for doc_id, vector in enumerate(vectors)]
    result = pipeline.run(records)
    return dict(result.records), result


def brute_force_similarity(
    vectors: Sequence[TfIdfVector], *, threshold: float = 0.0
) -> dict[tuple[int, int], float]:
    """Single-machine oracle: all-pairs cosine above threshold."""
    out: dict[tuple[int, int], float] = {}
    for i in range(1, len(vectors) + 1):
        for j in range(1, i):
            sim = cosine_similarity(vectors[i - 1], vectors[j - 1])
            if sim > threshold:
                out[(i, j)] = sim
    return out


def most_similar(
    similarities: Mapping[tuple[int, int], float], doc: int, k: int = 5
) -> list[tuple[int, float]]:
    """Top-k most similar documents to ``doc`` from a pair→cosine map."""
    scores: dict[int, float] = defaultdict(float)
    for (i, j), sim in similarities.items():
        if i == doc:
            scores[j] = max(scores[j], sim)
        elif j == doc:
            scores[i] = max(scores[i], sim)
    # heapq.nlargest is O(v log k) vs O(v log v) for a full sort; the key
    # (sim, -id) reproduces the historical (-sim, id) ascending order.
    return heapq.nlargest(k, scores.items(), key=lambda item: (item[1], -item[0]))
