#!/usr/bin/env python
"""Hierarchical processing of a dataset no flat scheme can handle (§7).

Constructs a workload whose flat block scheme violates the environment's
maxws/maxis limits, then runs it with the two-level block schedule:
coarse rounds processed sequentially (each aggregated before the next
starts), fine tasks in parallel within a round.  Shows both limits easing
and verifies the computed results against brute force.

Run:  python examples/hierarchical_rounds.py
"""

from repro import GB, KB, MB
from repro._util import format_bytes
from repro.cluster import ClusterSimulator, ClusterSpec, NodeSpec
from repro.core import (
    BlockScheme,
    HierarchicalBlockScheme,
    brute_force_results,
    results_matrix,
    run_rounds,
)

V = 600
ELEMENT_SIZE = 1 * MB          # 600 MB dataset
MAXWS = 100 * MB               # tight slots
MAXIS = 2 * GB                 # tight intermediate storage


def distance(a: float, b: float) -> float:
    return abs(a - b)


def main() -> None:
    cluster = ClusterSpec.homogeneous(6, NodeSpec(slot_memory=MAXWS, slots=2))
    sim = ClusterSimulator(cluster, maxis=MAXIS)

    # Flat block scheme: every h either blows maxws (small h) or maxis
    # (large h) — show the squeeze at a representative h.
    flat = sim.simulate(BlockScheme(V, 4), ELEMENT_SIZE)
    print(f"flat block (h=4) on v={V} × {format_bytes(ELEMENT_SIZE)}:")
    for check in flat.limit_checks:
        print("   ", check.format())

    # Two-level schedule: coarse H=6 rounds, fine factor 4.
    schedule = HierarchicalBlockScheme(V, coarse_h=6, fine_h=4)
    hier = sim.simulate_schedule(schedule, ELEMENT_SIZE)
    print(f"\nhierarchical (H=6, f=4, {schedule.num_rounds} sequential rounds):")
    for check in hier.limit_checks:
        print("   ", check.format())
    print(f"    makespan {hier.measured.makespan_seconds:.1f}s "
          f"(flat would be {flat.measured.makespan_seconds:.1f}s if it fit)")
    assert hier.feasible and not flat.feasible

    # Correctness of the actual round-by-round computation (small replica
    # of the same schedule shape).
    small = [float((x * 13 + 7) % 101) for x in range(60)]
    out = run_rounds(small, distance, HierarchicalBlockScheme(60, 6, 4))
    assert results_matrix(out) == brute_force_results(small, distance)
    print("\nround-by-round execution matches brute force ✓")


if __name__ == "__main__":
    main()
