#!/usr/bin/env python
"""Gene-regulatory relevance network via pairwise mutual information
(paper §1, example 3).

Plants dependent gene pairs in a synthetic expression matrix, computes
all-pairs mutual information through the pairwise pipeline (broadcast
scheme with its one-job optimization — the dataset is small, the function
comparatively expensive, exactly §5.1's target regime), thresholds into a
relevance network, and checks the planted edges are recovered.

Run:  python examples/gene_network.py
"""

from repro import BroadcastScheme, PairwiseComputation, results_matrix
from repro.apps import MutualInformationComp, build_relevance_network
from repro.workloads import make_expression_matrix

GENES = 40
SAMPLES = 120
PLANTED = 6
THRESHOLD = 0.8


def main() -> None:
    matrix = make_expression_matrix(
        GENES, SAMPLES, num_linked_pairs=PLANTED, link_noise=0.15, seed=21
    )
    profiles = [matrix[i] for i in range(GENES)]

    # Broadcast one-job form: dataset via distributed cache, map tasks
    # evaluate their label chunk, reducers aggregate per gene.
    scheme = BroadcastScheme(GENES, num_tasks=8)
    computation = PairwiseComputation(scheme, MutualInformationComp(bins=8))
    merged = computation.run_broadcast_job(profiles)
    mi = results_matrix(merged)

    network = build_relevance_network(mi, GENES, THRESHOLD)
    planted = {(2 * k + 2, 2 * k + 1) for k in range(PLANTED)}
    found = {(i, j) for i, j, _ in network.edges}

    print(f"{GENES} genes × {SAMPLES} samples, {PLANTED} planted links, "
          f"MI threshold {THRESHOLD} nats")
    print(f"  edges in network : {len(network.edges)}")
    print(f"  planted recovered: {len(planted & found)}/{PLANTED}")
    assert planted <= found, f"missed planted links: {planted - found}"

    print("  strongest edges:")
    for i, j, value in sorted(network.edges, key=lambda e: -e[2])[:PLANTED]:
        marker = "planted" if (i, j) in planted else "spurious"
        print(f"    g{j:<3d}— g{i:<3d} MI={value:.3f}  [{marker}]")

    components = network.components()
    nontrivial = [c for c in components if len(c) > 1]
    print(f"  connected components > 1 gene: {len(nontrivial)}")


if __name__ == "__main__":
    main()
