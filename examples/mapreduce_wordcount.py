#!/usr/bin/env python
"""The MapReduce substrate standing alone: file-driven wordcount.

The pairwise library rides on a complete local MR runtime; this example
shows it is usable as a general-purpose engine — the classic wordcount,
run three ways over the same JSONL input files:

1. serial engine, native Python mapper/reducer with a combiner;
2. multiprocess engine (identical results, parallel tasks);
3. a Hadoop-Streaming reducer (an external python one-liner).

Run:  python examples/mapreduce_wordcount.py
"""

import tempfile
from pathlib import Path

from repro.mapreduce import (
    FRAMEWORK_GROUP,
    Job,
    Mapper,
    MultiprocessEngine,
    Reducer,
    SHUFFLE_RECORDS,
    SerialEngine,
    read_output_dir,
    run_job_on_files,
    write_records,
)
from repro.mapreduce.streaming import StreamingReducer, python_command

LINES = [
    "the quick brown fox jumps over the lazy dog",
    "pairwise element computation with mapreduce",
    "the fox computes pairs the dog aggregates results",
    "every pair exactly once every task balanced",
]


class TokenizeMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


STREAM_SUM = python_command(
    "current, total = None, 0\n"
    "def flush():\n"
    "    if current is not None:\n"
    "        print(f'{current}\\t{total}')\n"
    "for line in sys.stdin:\n"
    "    k, v = line.rstrip('\\n').split('\\t')\n"
    "    if k != current:\n"
    "        flush()\n"
    "        current, total = k, 0\n"
    "    total += int(v)\n"
    "flush()"
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        inputs = []
        for index, line in enumerate(LINES):
            path = tmp_path / f"lines-{index}.jsonl"
            write_records(path, [(index, line)])
            inputs.append(path)

        job = Job(
            name="wordcount",
            mapper=TokenizeMapper,
            reducer=SumReducer,
            combiner=SumReducer,
            num_reducers=3,
        )
        serial = run_job_on_files(job, inputs, tmp_path / "out-serial")
        counts = dict(read_output_dir(tmp_path / "out-serial"))
        top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        print("serial engine, combiner on:")
        for word, count in top:
            print(f"   {word:<10} {count}")
        shuffled = serial.counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS)
        print(f"   shuffle records (post-combiner): {shuffled}\n")

        parallel = run_job_on_files(
            job, inputs, tmp_path / "out-mp", engine=MultiprocessEngine(2)
        )
        mp_counts = dict(read_output_dir(tmp_path / "out-mp"))
        assert mp_counts == counts
        print("multiprocess engine: identical counts ✓\n")

        streaming_job = Job(
            name="wordcount-streaming",
            mapper=TokenizeMapper,
            reducer=StreamingReducer,
            num_reducers=2,
            config={"stream.reducer": STREAM_SUM},
        )
        run_job_on_files(streaming_job, inputs, tmp_path / "out-stream",
                         engine=SerialEngine())
        stream_counts = {
            word: int(count)
            for word, count in read_output_dir(tmp_path / "out-stream")
        }
        assert stream_counts == counts
        print("streaming reducer (external python process): identical counts ✓")


if __name__ == "__main__":
    main()
