#!/usr/bin/env python
"""Quickstart: parallel pairwise computation in a few lines.

Evaluates a symmetric function on all pairs of a small dataset under each
of the paper's three distribution schemes, shows that they produce the
same results, and prints each scheme's Table-1 characteristics.

Run:  python examples/quickstart.py
"""

from repro import (
    KB,
    BlockScheme,
    BroadcastScheme,
    DesignScheme,
    PairwiseComputation,
    results_matrix,
)


def distance(a: float, b: float) -> float:
    """The pairwise function: any symmetric computation over two payloads."""
    return abs(a - b)


def main() -> None:
    # A dataset is just a list of payloads; elements get ids 1..v.
    data = [float((x * 17 + 5) % 101) for x in range(60)]
    v = len(data)

    schemes = [
        BroadcastScheme(v, num_tasks=8),  # §5.1: replicate all, split pairs
        BlockScheme(v, h=5),              # §5.2: tile the pair matrix
        DesignScheme(v),                  # §5.3: projective-plane working sets
    ]

    reference = None
    for scheme in schemes:
        computation = PairwiseComputation(scheme, distance)
        # run() executes the paper's two MapReduce jobs: distribute+compute,
        # then aggregate. The result maps element id -> Element with the
        # pairwise results against every other element.
        elements = computation.run(data)
        pairs = results_matrix(elements)

        if reference is None:
            reference = pairs
        assert pairs == reference, "schemes must agree pair-for-pair"

        print(scheme.describe())
        print("   ", scheme.metrics().summary(element_size=100 * KB))
        sample = elements[1]
        closest = min(sample.results.items(), key=lambda kv: kv[1])
        print(f"    element 1: {len(sample.results)} results, "
              f"closest partner s{closest[0]} at distance {closest[1]}\n")

    total = v * (v - 1) // 2
    print(f"All {len(schemes)} schemes computed the same {total} pairs exactly once.")


if __name__ == "__main__":
    main()
