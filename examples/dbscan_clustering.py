#!/usr/bin/env python
"""DBSCAN clustering on parallel pairwise distances (paper §1, example 1).

Generates Gaussian blobs with background noise, computes ε-neighbourhoods
through the pairwise pipeline with threshold pruning (§3's note that
DBSCAN-like applications can drop uninteresting results), and clusters.
Verifies against the single-machine reference implementation.

Run:  python examples/dbscan_clustering.py
"""

from repro import BlockScheme
from repro.apps import dbscan_pairwise, dbscan_reference
from repro.workloads import make_blobs

V = 120
EPS = 1.5
MIN_PTS = 4


def main() -> None:
    points = make_blobs(
        V, dim=2, num_clusters=4, spread=0.35, box=15.0, noise_fraction=0.1, seed=42
    )

    # The distance phase runs under the block scheme; the ThresholdAggregator
    # inside dbscan_pairwise keeps only partners within eps, so the shuffled
    # result lists stay small.
    scheme = BlockScheme(V, h=6)
    result = dbscan_pairwise(points, EPS, MIN_PTS, scheme)

    reference = dbscan_reference(points, EPS, MIN_PTS)
    assert result.labels == reference.labels, "parallel DBSCAN must match oracle"

    print(f"DBSCAN over {V} points (eps={EPS}, min_pts={MIN_PTS}) "
          f"under {scheme.describe()}")
    print(f"  clusters found : {result.num_clusters}")
    print(f"  core points    : {len(result.core)}")
    noise = [eid for eid, label in result.labels.items() if label == -1]
    print(f"  noise points   : {len(noise)}")
    for cluster in range(result.num_clusters):
        members = result.members(cluster)
        centroid = sum(points[eid - 1] for eid in members) / len(members)
        print(f"  cluster {cluster}: {len(members):3d} points, "
              f"centroid ≈ ({centroid[0]:6.2f}, {centroid[1]:6.2f})")
    print("matches the single-machine reference ✓")


if __name__ == "__main__":
    main()
