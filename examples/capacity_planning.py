#!/usr/bin/env python
"""Capacity planning with the paper's feasibility model (§6, Figs 8–9).

Given a dataset (cardinality × element size) and an environment
(per-task memory ``maxws``, intermediate storage ``maxis``), decide which
distribution scheme — broadcast, block (and which h), design, or a §7
hierarchical fallback — can run it.  This turns the paper's evaluation
charts into the practical tool they imply.

Run:  python examples/capacity_planning.py
"""

from repro import GB, KB, MB, TB
from repro._util import format_bytes
from repro.core.cost_model import (
    block_h_bounds,
    max_v_block,
    max_v_broadcast,
    max_v_design,
    max_v_design_storage,
)
from repro.core.hierarchical import hierarchical_max_dataset_bytes

MAXWS = 200 * MB
MAXIS = 1 * TB

SCENARIOS = [
    ("small images", 2_000, 50 * KB),
    ("documents", 50_000, 100 * KB),
    ("micro-array scans", 10_000, 1 * MB),
    ("genome fragments", 5_000, 10 * MB),
    ("video segments", 4_000, 50 * MB),
]


def plan(v: int, s: int) -> list[str]:
    """All feasible options for a (cardinality, element size) workload."""
    options = []
    if v <= max_v_broadcast(s, MAXWS):
        options.append("broadcast (dataset fits each task)")
    if v <= max_v_block(s, MAXWS, MAXIS):
        bounds = block_h_bounds(v * s, MAXWS, MAXIS)
        options.append(f"block with h ∈ [{bounds.h_min}, {bounds.h_max}]")
    if v <= max_v_design(s, MAXIS, MAXWS):
        options.append("design (smallest working sets)")
    elif v <= max_v_design_storage(s, MAXIS):
        options.append("design (maxis ok; watch the √v·s working set)")
    if not options:
        # §7 fallback: how coarse must a two-level block hierarchy be?
        H = 2
        while hierarchical_max_dataset_bytes(MAXWS, MAXIS, H) < v * s and H < 4096:
            H *= 2
        if hierarchical_max_dataset_bytes(MAXWS, MAXIS, H) >= v * s:
            options.append(f"hierarchical block, coarse factor H ≥ {H} "
                           f"({H * (H + 1) // 2} sequential rounds)")
        else:
            options.append("infeasible even hierarchically at these limits")
    return options


def main() -> None:
    print(f"environment: maxws = {format_bytes(MAXWS)} per task, "
          f"maxis = {format_bytes(MAXIS)}\n")
    for name, v, s in SCENARIOS:
        dataset = format_bytes(v * s)
        print(f"{name}: v = {v:,} × {format_bytes(s)} = {dataset}")
        for option in plan(v, s):
            print(f"    ✓ {option}")
        print()


if __name__ == "__main__":
    main()
