#!/usr/bin/env python
"""Cross-document similarity (paper §1, example 2; §2's baseline contrast).

Computes all-pairs cosine similarity over tf-idf document vectors twice:

1. with the paper's *generic* pairwise pipeline (design scheme) — works
   for any pair function, pays the full v(v−1)/2;
2. with the Elsayed-et-al *inverted-index* baseline the paper's related
   work cites — cheaper, but only because this application lets document
   pairs without shared terms be skipped.

Prints agreement plus the work each method did.

Run:  python examples/document_similarity.py
"""

from repro import DesignScheme, PairwiseComputation, results_matrix
from repro.apps import build_tfidf, cosine_similarity, elsayed_similarity, most_similar
from repro.core.pairwise import EVALUATIONS, PAIRWISE_GROUP
from repro.workloads import make_documents

V = 50


def main() -> None:
    documents = make_documents(
        V, vocabulary=1500, length=40, num_topics=5, topic_strength=0.7, seed=7
    )
    vectors = build_tfidf(documents)

    # Route 1: generic pairwise under the design scheme.
    computation = PairwiseComputation(DesignScheme(V), cosine_similarity)
    merged, pipeline = computation.run(vectors, return_pipeline=True)
    generic = results_matrix(merged)
    generic_evals = pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS)

    # Route 2: the §2 baseline (term postings → per-term pair products).
    baseline, result = elsayed_similarity(vectors, threshold=1e-12)
    partials = result.counters.get("docsim", "partial_products")

    mismatches = [
        pair
        for pair, sim in baseline.items()
        if abs(generic[pair] - sim) > 1e-9
    ]
    assert not mismatches, f"methods disagree on {mismatches[:3]}"

    print(f"{V} documents, {sum(len(d) for d in documents)} tokens total")
    print(f"  generic pairwise : {generic_evals} cosine evaluations "
          f"(the full triangle)")
    print(f"  inverted index   : {partials} per-term partial products, "
          f"{len(baseline)} non-zero pairs reported")
    print("  both methods agree on every shared-term pair ✓\n")

    query = 1
    print(f"documents most similar to d{query}:")
    for doc, sim in most_similar(generic, query, k=5):
        shared = set(vectors[query - 1]) & set(vectors[doc - 1])
        print(f"  d{doc:<3d} cosine={sim:.3f}  shared terms: {len(shared)}")


if __name__ == "__main__":
    main()
