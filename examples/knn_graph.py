#!/usr/bin/env python
"""k-nearest-neighbour graph via pairwise distances with top-k aggregation.

Demonstrates that the aggregation step (Algorithm 2) controls what is
*stored*, not what is *computed*: the scheme still evaluates every pair
exactly once, but each element keeps only its k closest partners — the
kNN graph many §1-adjacent algorithms start from.  Uses the O(√v)-memory
cyclic design scheme.

Run:  python examples/knn_graph.py
"""

from repro.apps import (
    average_neighbor_distance,
    degree_histogram,
    knn_graph,
    knn_reference,
    recall_at_k,
)
from repro.core import CyclicDesignScheme
from repro.workloads import make_blobs

V = 90
K = 5


def main() -> None:
    points = make_blobs(V, dim=2, num_clusters=4, spread=0.4, seed=33)

    scheme = CyclicDesignScheme(V)
    graph = knn_graph(points, K, scheme)
    reference = knn_reference(points, K)

    print(f"kNN graph over {V} points, k={K}, under {scheme.describe()}")
    print(f"  recall vs brute force : {recall_at_k(graph, reference):.3f}")
    assert graph.neighbors == reference.neighbors

    mutual = graph.mutual_edges()
    print(f"  directed edges        : {len(graph.edge_set())}")
    print(f"  mutual (undirected)   : {len(mutual)}")
    print(f"  mean neighbour dist   : {average_neighbor_distance(graph):.3f}")

    histogram = degree_histogram(graph)
    hubs = max(histogram)
    print(f"  in-degree histogram   : {dict(histogram)}")
    print(f"  most-popular point has in-degree {hubs}")

    nx_graph = graph.to_networkx()
    import networkx as nx

    components = nx.number_weakly_connected_components(nx_graph)
    print(f"  weakly connected comps: {components} "
          f"(≈ the {4} planted blobs at this k)")


if __name__ == "__main__":
    main()
