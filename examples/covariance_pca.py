#!/usr/bin/env python
"""Covariance matrix and PCA via pairwise row inner products
(paper §1, example 4: "the computation of the covariance matrix of a
matrix A requires to compute A × Aᵀ ... a pairwise inner product on all
rows of A").

Builds a low-rank matrix, computes the row covariance through the
pairwise pipeline (block scheme), assembles the matrix, runs PCA, and
verifies everything against numpy.

Run:  python examples/covariance_pca.py
"""

import numpy as np

from repro import BlockScheme, PairwiseComputation, results_matrix
from repro.apps import (
    assemble_covariance,
    center_rows,
    covariance_reference,
    pca_from_covariance,
    row_inner_product,
)
from repro.workloads import make_matrix

ROWS = 30       # variables (the pairwise elements)
COLS = 200      # samples per variable
TRUE_RANK = 4


def main() -> None:
    A = make_matrix(ROWS, COLS, rank=TRUE_RANK, seed=3)
    rows = center_rows(A)

    scheme = BlockScheme(ROWS, h=5)
    computation = PairwiseComputation(scheme, row_inner_product)
    merged = computation.run(rows)
    products = results_matrix(merged)

    cov = assemble_covariance(products, rows)
    expected = covariance_reference(A)
    assert np.allclose(cov, expected), "pairwise covariance must equal np.cov"

    pca = pca_from_covariance(cov)
    significant = int((pca.eigenvalues > 1e-8).sum())

    print(f"A is {ROWS}×{COLS} with planted rank {TRUE_RANK}; "
          f"pairwise inner products under {scheme.describe()}")
    print(f"  covariance matches np.cov: max |Δ| = "
          f"{np.abs(cov - expected).max():.2e}")
    print(f"  significant eigenvalues   : {significant} (expected {TRUE_RANK})")
    ratios = pca.explained_variance_ratio[:TRUE_RANK]
    print("  explained variance (top-4):",
          "  ".join(f"{r:.1%}" for r in ratios))
    assert significant == TRUE_RANK

    projected = pca.components[:TRUE_RANK] @ (A - A.mean(axis=1, keepdims=True))
    print(f"  projection to {TRUE_RANK} components: shape {projected.shape} "
          f"(lossless for a rank-{TRUE_RANK} signal)")


if __name__ == "__main__":
    main()
